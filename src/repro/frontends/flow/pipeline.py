"""Automatic pipelining of functional kernels (the XLS scheduling model).

A flow kernel is a *pure function* from input values to output values; the
compiler owns the timing.  :func:`pipeline_kernel` traces the function into
an expression DAG, estimates per-node delays with the synthesis technology
model, slices the critical path into ``n_stages`` balanced stages, and
inserts pipeline registers on every DAG edge that crosses a stage boundary.

This reproduces the paper's XLS knob: one parameter (the number of pipeline
stages) sweeps the design space from a pure combinational circuit to a
deeply pipelined one, trading flip-flop area for clock frequency while the
sequential AXI adapter keeps the periodicity pinned at 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ...core.errors import FrontendError
from ...rtl import Module, ops
from ...rtl.ir import (
    BinOp,
    Cat,
    Const,
    Expr,
    Ext,
    Mux,
    Ref,
    Signal,
    Slice,
    UnOp,
)
from ...synth.cost import node_cost
from ...synth.tech import ULTRASCALE_PLUS, Tech
from ..hc.dsl import Sig

__all__ = ["PipelineResult", "pipeline_kernel"]

KernelFn = Callable[[list[Sig]], dict[str, Sig]]


@dataclass
class PipelineResult:
    """A pipelined (or combinational) kernel module plus its statistics."""

    module: Module
    n_stages: int
    latency: int
    pipeline_ff_bits: int
    stage_node_counts: list[int] = field(default_factory=list)
    critical_path_ns: float = 0.0


def _children(expr: Expr) -> tuple[Expr, ...]:
    if isinstance(expr, BinOp):
        return (expr.a, expr.b)
    if isinstance(expr, UnOp):
        return (expr.a,)
    if isinstance(expr, Mux):
        return (expr.sel, expr.if_true, expr.if_false)
    if isinstance(expr, Cat):
        return expr.parts
    if isinstance(expr, (Slice, Ext)):
        return (expr.a,)
    return ()


def _rebuild(expr: Expr, child_of: Callable[[Expr], Expr]) -> Expr:
    """Clone one node with substituted children."""
    if isinstance(expr, (Const, Ref)):
        return expr
    if isinstance(expr, BinOp):
        return BinOp(expr.kind, child_of(expr.a), child_of(expr.b))
    if isinstance(expr, UnOp):
        return UnOp(expr.kind, child_of(expr.a))
    if isinstance(expr, Mux):
        return Mux(child_of(expr.sel), child_of(expr.if_true), child_of(expr.if_false))
    if isinstance(expr, Cat):
        return Cat(tuple(child_of(p) for p in expr.parts))
    if isinstance(expr, Slice):
        return Slice(child_of(expr.a), expr.hi, expr.lo)
    if isinstance(expr, Ext):
        return Ext(child_of(expr.a), expr.width, expr.signed)
    raise FrontendError(f"cannot pipeline node {type(expr).__name__}")


def pipeline_kernel(
    name: str,
    inputs: list[tuple[str, int]],
    build: KernelFn,
    n_stages: int,
    tech: Tech = ULTRASCALE_PLUS,
) -> PipelineResult:
    """Trace ``build`` over the declared inputs and pipeline the result.

    ``n_stages == 0`` produces a purely combinational module (the XLS
    "combinational" circuit type); otherwise the module gains a ``ce``
    input and a register latency of exactly ``n_stages`` cycles.
    """
    if n_stages < 0:
        raise FrontendError("n_stages must be non-negative")
    module = Module(name)
    ce: Signal | None = None
    if n_stages > 0:
        ce = module.input("ce", 1)
    input_sigs = [Sig(Ref(module.input(pname, width)), signed=False)
                  for pname, width in inputs]
    outputs = build(input_sigs)
    if not outputs:
        raise FrontendError("kernel produced no outputs")

    # ------------------------------------------------------------------
    # combinational: just wire the outputs up
    # ------------------------------------------------------------------
    if n_stages == 0:
        for oname, value in outputs.items():
            port = module.output(oname, value.width)
            module.assign(port, value.expr)
        return PipelineResult(module=module, n_stages=0, latency=0,
                              pipeline_ff_bits=0)

    # ------------------------------------------------------------------
    # collect the DAG (unique nodes, children first)
    # ------------------------------------------------------------------
    ordered: list[Expr] = []
    seen: set[int] = set()

    def visit(node: Expr) -> None:
        if id(node) in seen:
            return
        seen.add(id(node))
        for child in _children(node):
            visit(child)
        ordered.append(node)

    for value in outputs.values():
        visit(value.expr)

    # Arrival times with the technology delay model.
    arrival: dict[int, float] = {}
    for node in ordered:
        base = max((arrival[id(c)] for c in _children(node)), default=0.0)
        arrival[id(node)] = base + node_cost(node, tech, allow_dsp=False).delay
    critical = max((arrival[id(v.expr)] for v in outputs.values()), default=0.0)
    t_stage = critical / n_stages if critical > 0 else 1.0

    # Stage assignment: by arrival slice, monotone over the DAG.
    stage: dict[int, int] = {}
    for node in ordered:
        by_time = min(n_stages - 1, int(arrival[id(node)] / (t_stage + 1e-12)))
        by_children = max((stage[id(c)] for c in _children(node)), default=0)
        stage[id(node)] = max(by_time, by_children)

    # ------------------------------------------------------------------
    # re-materialize with boundary registers
    # ------------------------------------------------------------------
    rebuilt: dict[int, Expr] = {}       # node id -> expr at the node's stage
    chains: dict[int, list[Expr]] = {}  # node id -> delayed copies
    ff_bits = 0
    reg_index = 0

    def at_stage(node: Expr, want: int) -> Expr:
        """The node's value delayed to stage ``want``."""
        nonlocal ff_bits, reg_index
        if isinstance(node, Const):
            return node  # constants are free at every stage
        base_stage = stage.get(id(node), 0)
        delay = want - base_stage
        if delay == 0:
            return rebuilt[id(node)]
        chain = chains.setdefault(id(node), [])
        while len(chain) < delay:
            prev = rebuilt[id(node)] if not chain else chain[-1]
            reg = module.reg(f"p{reg_index}", prev.width, next=prev,
                             en=Ref(ce))  # type: ignore[arg-type]
            reg_index += 1
            ff_bits += prev.width
            chain.append(Ref(reg))
        return chain[delay - 1]

    for node in ordered:
        if isinstance(node, (Const, Ref)):
            rebuilt[id(node)] = node
            continue
        s = stage[id(node)]
        rebuilt[id(node)] = _rebuild(node, lambda child: at_stage(child, s))

    # Outputs are registered out of the final boundary: total latency is
    # exactly ``n_stages`` cycles for every path.
    for oname, value in outputs.items():
        port = module.output(oname, value.width)
        final = at_stage(value.expr, n_stages - 1)
        out_reg = module.reg(f"oreg_{oname}", value.width, next=final,
                             en=Ref(ce))  # type: ignore[arg-type]
        ff_bits += value.width
        module.assign(port, Ref(out_reg))

    counts = [0] * n_stages
    for node in ordered:
        if not isinstance(node, (Const, Ref)):
            counts[stage[id(node)]] += 1
    return PipelineResult(
        module=module,
        n_stages=n_stages,
        latency=n_stages,
        pipeline_ff_bits=ff_bits,
        stage_node_counts=counts,
        critical_path_ns=critical,
    )
