"""The IDCT as a DSLX-style functional kernel.

One pure function from the packed input matrix to the packed output matrix
— no state, no timing, no explicit pipeline anywhere.  The compiler
(:mod:`repro.frontends.flow.pipeline`) decides where the registers go.
Adapted, as in the paper, from the XLS IDCT example with the element
widths changed to 12-bit inputs / 9-bit outputs.
"""

from __future__ import annotations

from ...idct.constants import W1, W2, W3, W5, W6, W7
from ..hc.dsl import Sig, mux

__all__ = ["idct_kernel", "ROWS", "COLS", "IN_W", "OUT_W"]

ROWS, COLS, IN_W, OUT_W = 8, 8, 12, 9


def _row_xform(b: list[Sig]) -> list[Sig]:
    """One row butterfly (a DSLX ``fn idct_row``)."""
    x1 = b[4] << 11
    x0 = (b[0] << 11) + 128
    x8 = (b[1] + b[7]) * W7
    x4, x5 = x8 + b[1] * (W1 - W7), x8 - b[7] * (W1 + W7)
    x8 = (b[5] + b[3]) * W3
    x6, x7 = x8 - b[5] * (W3 - W5), x8 - b[3] * (W3 + W5)
    x8, x0 = x0 + x1, x0 - x1
    x1 = (b[2] + b[6]) * W6
    x2, x3 = x1 - b[6] * (W2 + W6), x1 + b[2] * (W2 - W6)
    x1, x4 = x4 + x6, x4 - x6
    x6, x5 = x5 + x7, x5 - x7
    x7, x8 = x8 + x3, x8 - x3
    x3, x0 = x0 + x2, x0 - x2
    x2 = ((x4 + x5) * 181 + 128) >> 8
    x4 = ((x4 - x5) * 181 + 128) >> 8
    return [
        (x7 + x1) >> 8, (x3 + x2) >> 8, (x0 + x4) >> 8, (x8 + x6) >> 8,
        (x8 - x6) >> 8, (x0 - x4) >> 8, (x3 - x2) >> 8, (x7 - x1) >> 8,
    ]


def _col_xform(b: list[Sig]) -> list[Sig]:
    """One column butterfly with 9-bit saturation (``fn idct_col``)."""
    x1 = b[4] << 8
    x0 = (b[0] << 8) + 8192
    x8 = (b[1] + b[7]) * W7 + 4
    x4, x5 = (x8 + b[1] * (W1 - W7)) >> 3, (x8 - b[7] * (W1 + W7)) >> 3
    x8 = (b[5] + b[3]) * W3 + 4
    x6, x7 = (x8 - b[5] * (W3 - W5)) >> 3, (x8 - b[3] * (W3 + W5)) >> 3
    x8, x0 = x0 + x1, x0 - x1
    x1 = (b[2] + b[6]) * W6 + 4
    x2, x3 = (x1 - b[6] * (W2 + W6)) >> 3, (x1 + b[2] * (W2 - W6)) >> 3
    x1, x4 = x4 + x6, x4 - x6
    x6, x5 = x5 + x7, x5 - x7
    x7, x8 = x8 + x3, x8 - x3
    x3, x0 = x0 + x2, x0 - x2
    x2 = ((x4 + x5) * 181 + 128) >> 8
    x4 = ((x4 - x5) * 181 + 128) >> 8
    return [
        ((x7 + x1) >> 14).clip(-256, 255),
        ((x3 + x2) >> 14).clip(-256, 255),
        ((x0 + x4) >> 14).clip(-256, 255),
        ((x8 + x6) >> 14).clip(-256, 255),
        ((x8 - x6) >> 14).clip(-256, 255),
        ((x0 - x4) >> 14).clip(-256, 255),
        ((x3 - x2) >> 14).clip(-256, 255),
        ((x7 - x1) >> 14).clip(-256, 255),
    ]


def idct_kernel(inputs: list[Sig]) -> dict[str, Sig]:
    """The full 8x8 IDCT: ``fn idct(in_mat) -> out_mat``."""
    from ...rtl import ops

    (in_mat,) = inputs
    rows = [
        [
            in_mat.bits((r * COLS + c + 1) * IN_W - 1, (r * COLS + c) * IN_W)
            .as_signed()
            for c in range(COLS)
        ]
        for r in range(ROWS)
    ]
    mid = [_row_xform(row) for row in rows]
    cols = [_col_xform([mid[r][c] for r in range(ROWS)]) for c in range(COLS)]
    elements = [cols[c][r].resize(OUT_W).expr
                for r in range(ROWS) for c in range(COLS)]
    packed = Sig(ops.cat(*reversed(elements)), signed=False)
    return {"out_mat": packed}
