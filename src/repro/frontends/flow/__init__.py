"""DSLX/XLS-like functional dataflow frontend with automatic pipelining."""

from .designs import all_designs, build_kernel, xls_design, xls_initial, xls_sweep
from .kernel import idct_kernel
from .pipeline import PipelineResult, pipeline_kernel

__all__ = [
    "pipeline_kernel",
    "PipelineResult",
    "idct_kernel",
    "build_kernel",
    "xls_design",
    "xls_initial",
    "xls_sweep",
    "all_designs",
]
