"""XLS-flow design points: the combinational initial design and the sweep.

The paper synthesized 19 implementations with XLS by varying (a) the
circuit type (combinational or pipelined) and (b) the number of pipeline
stages.  ``xls_sweep()`` reproduces exactly that: the combinational
circuit plus stages 1..18, each behind the same hand-crafted row-by-row
AXI-Stream adapter.
"""

from __future__ import annotations

from ...axis.spec import KernelSpec, KernelStyle
from ...axis.wrapper import build_axis_wrapper
from ..base import Design, SourceArtifact, source_of, traced_build
from .kernel import COLS, IN_W, OUT_W, ROWS, idct_kernel
from .pipeline import PipelineResult, pipeline_kernel

__all__ = ["build_kernel", "xls_design", "xls_initial", "xls_sweep", "all_designs"]

MAX_STAGES = 18


def build_kernel(n_stages: int) -> PipelineResult:
    """The IDCT kernel scheduled into ``n_stages`` pipeline stages."""
    return pipeline_kernel(
        name=f"idct_xls_s{n_stages}",
        inputs=[("in_mat", ROWS * COLS * IN_W)],
        build=idct_kernel,
        n_stages=n_stages,
    )


def _sources(n_stages: int) -> list[SourceArtifact]:
    from ...axis import wrapper as axis_wrapper
    from . import kernel as kernel_mod

    artifacts = [
        source_of(kernel_mod._row_xform, "idct_row.x"),
        source_of(kernel_mod._col_xform, "idct_col.x"),
        source_of(kernel_mod.idct_kernel, "idct.x"),
        # Hand-crafted AXI-Stream adapter, as the paper notes for XLS.
        source_of(axis_wrapper._build_matrix_wrapper, "axis_adapter.v"),
    ]
    artifacts.append(
        SourceArtifact(
            label="xls_options.cfg",
            text=f"pipeline_stages = {n_stages}\n"
            + ("delay_model = unit\nreset = rst\n" if n_stages else "combinational = true\n"),
            kind="config",
        )
    )
    return artifacts


@traced_build("flow")
def xls_design(n_stages: int, config: str | None = None) -> Design:
    """One XLS design point with ``n_stages`` pipeline stages (0 = comb)."""
    result = build_kernel(n_stages)
    if n_stages == 0:
        spec = KernelSpec(style=KernelStyle.COMB_MATRIX, rows=ROWS, cols=COLS,
                          in_width=IN_W, out_width=OUT_W)
    else:
        spec = KernelSpec(style=KernelStyle.PIPELINED_MATRIX, rows=ROWS,
                          cols=COLS, in_width=IN_W, out_width=OUT_W,
                          latency=result.latency)
    top = build_axis_wrapper(result.module, spec,
                             name=f"xls_s{n_stages}_top")
    design = Design(
        name=f"xls-s{n_stages}",
        language="DSLX",
        tool="XLS",
        config=config or (f"stages-{n_stages}" if n_stages else "initial"),
        top=top,
        spec=spec,
        sources=_sources(n_stages),
    )
    design.meta["pipeline"] = result
    return design


def xls_initial() -> Design:
    """The paper's initial XLS design: the combinational circuit."""
    return xls_design(0, config="initial")


def xls_sweep() -> list[Design]:
    """All 19 XLS implementations: combinational plus 1..18 stages."""
    return [xls_design(n) for n in range(0, MAX_STAGES + 1)]


def all_designs() -> list[Design]:
    return [xls_initial(), xls_design(8)]
