"""Chisel-like hardware-construction DSL.

This frontend models the paper's Chisel flow: typed hardware values with
*width inference* (operators grow results just enough to never lose bits),
operator overloading, and functional generators, all compiling to the
shared RTL IR.

The paper's observation that the Chisel initial design is slightly smaller
than the Verilog one "because Chisel infers the bit widths automatically
and more accurately" falls straight out of this DSL: ``a + b`` is
``max(w_a, w_b) + 1`` bits and ``a * b`` is ``w_a + w_b`` bits, instead of
the Verilog baseline's blanket 34/38-bit datapaths.

Width rules (Chisel SInt semantics):

=============  =========================
``a + b``      ``max(wa, wb) + 1``
``a - b``      ``max(wa, wb) + 1``
``a * b``      ``wa + wb``
``a << n``     ``wa + n``
``a >> n``     ``max(1, wa - n)``
comparisons    1-bit (unsigned view)
``mux``        ``max(arm widths)``
=============  =========================
"""

from __future__ import annotations

from dataclasses import dataclass

from ...core.bits import min_width_signed, min_width_unsigned
from ...core.errors import FrontendError
from ...rtl import Module, ops
from ...rtl.ir import Expr, Ref, Signal

__all__ = ["Sig", "HcModule", "lit", "mux", "select", "transpose"]


@dataclass(frozen=True)
class Sig:
    """A typed hardware value (expression plus signedness)."""

    expr: Expr
    signed: bool = True

    @property
    def width(self) -> int:
        return self.expr.width

    # -- arithmetic (width-growing) ------------------------------------
    def _other(self, other: "Sig | int") -> "Sig":
        if isinstance(other, Sig):
            return other
        if isinstance(other, int):
            return lit(other, signed=self.signed)
        raise FrontendError(f"cannot operate on {type(other).__name__}")

    def __add__(self, other: "Sig | int") -> "Sig":
        rhs = self._other(other)
        return Sig(ops.add(self.expr, rhs.expr, signed=self.signed, grow=True),
                   self.signed)

    def __radd__(self, other: int) -> "Sig":
        return self._other(other).__add__(self)

    def __sub__(self, other: "Sig | int") -> "Sig":
        rhs = self._other(other)
        return Sig(ops.sub(self.expr, rhs.expr, signed=self.signed, grow=True),
                   self.signed)

    def __rsub__(self, other: int) -> "Sig":
        return self._other(other).__sub__(self)

    def __mul__(self, other: "Sig | int") -> "Sig":
        rhs = self._other(other)
        return Sig(ops.mul(self.expr, rhs.expr, signed=self.signed), self.signed)

    def __rmul__(self, other: int) -> "Sig":
        return self.__mul__(other)

    def __lshift__(self, amount: int) -> "Sig":
        extended = ops.sext(self.expr, self.width + amount) if self.signed \
            else ops.zext(self.expr, self.width + amount)
        return Sig(ops.shl(extended, amount), self.signed)

    def __rshift__(self, amount: int) -> "Sig":
        """Arithmetic shift right; the result narrows by ``amount`` bits."""
        new_width = max(1, self.width - amount)
        shifted = ops.ashr(self.expr, amount) if self.signed \
            else ops.lshr(self.expr, amount)
        return Sig(ops.trunc(shifted, new_width), self.signed)

    def __neg__(self) -> "Sig":
        return lit(0).__sub__(self)

    # -- comparisons (1-bit results) ------------------------------------
    def __lt__(self, other: "Sig | int") -> "Sig":
        rhs = self._other(other)
        return Sig(ops.lt(self.expr, rhs.expr, signed=self.signed), signed=False)

    def __le__(self, other: "Sig | int") -> "Sig":
        rhs = self._other(other)
        return Sig(ops.le(self.expr, rhs.expr, signed=self.signed), signed=False)

    def __gt__(self, other: "Sig | int") -> "Sig":
        rhs = self._other(other)
        return Sig(ops.gt(self.expr, rhs.expr, signed=self.signed), signed=False)

    def __ge__(self, other: "Sig | int") -> "Sig":
        rhs = self._other(other)
        return Sig(ops.ge(self.expr, rhs.expr, signed=self.signed), signed=False)

    def eq(self, other: "Sig | int") -> "Sig":
        rhs = self._other(other)
        return Sig(ops.eq(self.expr, rhs.expr), signed=False)

    def ne(self, other: "Sig | int") -> "Sig":
        rhs = self._other(other)
        return Sig(ops.ne(self.expr, rhs.expr), signed=False)

    # -- logic -----------------------------------------------------------
    def __and__(self, other: "Sig | int") -> "Sig":
        rhs = self._other(other)
        return Sig(ops.band(self.expr, rhs.expr), signed=False)

    def __or__(self, other: "Sig | int") -> "Sig":
        rhs = self._other(other)
        return Sig(ops.bor(self.expr, rhs.expr), signed=False)

    def __xor__(self, other: "Sig | int") -> "Sig":
        rhs = self._other(other)
        return Sig(ops.bxor(self.expr, rhs.expr), signed=False)

    def __invert__(self) -> "Sig":
        return Sig(ops.bnot(self.expr), signed=False)

    # -- shape -----------------------------------------------------------
    def resize(self, width: int) -> "Sig":
        return Sig(ops.resize(self.expr, width, signed=self.signed), self.signed)

    def bits(self, hi: int, lo: int) -> "Sig":
        return Sig(ops.bits(self.expr, hi, lo), signed=False)

    def as_signed(self) -> "Sig":
        return Sig(self.expr, signed=True)

    def as_unsigned(self) -> "Sig":
        return Sig(self.expr, signed=False)

    def clip(self, low: int, high: int) -> "Sig":
        """Saturate into [low, high]; result uses the minimal width."""
        width = max(min_width_signed(low), min_width_signed(high))
        clipped = mux(self > high, lit(high),
                      mux(self < low, lit(low), self.resize(width)))
        return clipped.resize(width)


def lit(value: int, width: int | None = None, signed: bool = True) -> Sig:
    """An integer literal with inferred (or explicit) width."""
    if width is None:
        width = min_width_signed(value) if signed else min_width_unsigned(value)
    return Sig(ops.const(value, width), signed)


def mux(sel: Sig, if_true: Sig | int, if_false: Sig | int) -> Sig:
    """2:1 mux with width-balanced arms."""
    t = if_true if isinstance(if_true, Sig) else lit(if_true)
    f = if_false if isinstance(if_false, Sig) else lit(if_false)
    signed = t.signed or f.signed
    width = max(t.width, f.width)
    return Sig(
        ops.mux(sel.expr, t.resize(width).expr, f.resize(width).expr, signed=signed),
        signed,
    )


def select(index: Sig, items: list[Sig]) -> Sig:
    """N:1 select (log-depth tree), Chisel ``VecInit(...)(index)`` style."""
    signed = any(item.signed for item in items)
    return Sig(
        ops.select(index.expr, [item.expr for item in items], signed=signed),
        signed,
    )


def transpose(matrix: list[list[Sig]]) -> list[list[Sig]]:
    """Functional matrix transpose (pure wiring)."""
    rows = len(matrix)
    cols = len(matrix[0])
    return [[matrix[r][c] for r in range(rows)] for c in range(cols)]


class HcModule:
    """Module builder in the hardware-construction idiom.

    ``kernel=True`` adds a ``ce`` clock-enable input and automatically
    gates every register with it, matching the wrapper convention in
    :mod:`repro.axis`.
    """

    def __init__(self, name: str, kernel: bool = False) -> None:
        self.module = Module(name)
        self._ce: Signal | None = None
        if kernel:
            self._ce = self.module.input("ce", 1)

    # -- ports -----------------------------------------------------------
    def input(self, name: str, width: int, signed: bool = True) -> Sig:
        return Sig(Ref(self.module.input(name, width)), signed)

    def output(self, name: str, value: Sig, width: int | None = None) -> Signal:
        width = width if width is not None else value.width
        port = self.module.output(name, width)
        self.module.assign(port, value.resize(width).expr)
        return port

    # -- named nodes -------------------------------------------------------
    def wire(self, name: str, value: Sig) -> Sig:
        """Name a value (creates a fan-out point in the netlist)."""
        sig = self.module.connect(name, value.width, value.expr)
        return Sig(Ref(sig), value.signed)

    def reg(
        self,
        name: str,
        next: Sig,
        en: Sig | None = None,
        init: int = 0,
        width: int | None = None,
    ) -> Sig:
        """A register of ``next`` (RegEnable / RegNext in Chisel terms)."""
        width = width if width is not None else next.width
        en_expr = self._enable(en)
        sig = self.module.reg(
            name, width, next=next.resize(width).expr, init=init, en=en_expr
        )
        return Sig(Ref(sig), next.signed)

    def reg_declare(self, name: str, width: int, init: int = 0, signed: bool = True) -> Sig:
        """Declare a register now, drive it later with :meth:`drive`."""
        sig = self.module.reg(name, width, init=init)
        return Sig(Ref(sig), signed)

    def drive(self, reg: Sig, next: Sig, en: Sig | None = None) -> None:
        """Supply the next value of a declared register."""
        if not isinstance(reg.expr, Ref):
            raise FrontendError("drive() target must be a declared register")
        target = reg.expr.signal
        self.module.set_next(target, next.resize(target.width).expr,
                             en=self._enable(en))

    def _enable(self, en: Sig | None) -> Expr | None:
        if en is None and self._ce is None:
            return None
        if en is None:
            return Ref(self._ce)  # type: ignore[arg-type]
        if self._ce is None:
            return en.expr
        return ops.band(Ref(self._ce), en.expr)

    def counter(self, name: str, limit: int, advance: Sig) -> tuple[Sig, Sig]:
        """A wrapping counter; returns (value, wrap_pulse)."""
        width = max(1, (limit - 1).bit_length())
        count = self.reg_declare(name, width, signed=False)
        wrap = self.wire(f"{name}_wrap", count.eq(limit - 1))
        self.drive(
            count,
            mux(advance, mux(wrap, lit(0, width, signed=False),
                             Sig(ops.trunc(ops.add(count.expr, 1), width), False)),
                count),
        )
        return count, wrap
