"""Chisel-like hardware-construction frontend."""

from .designs import all_designs, build_initial_kernel, build_opt_kernel, chisel_initial, chisel_opt
from .dsl import HcModule, Sig, lit, mux, select, transpose
from .idct import idct_col_hc, idct_row_hc

__all__ = [
    "HcModule",
    "Sig",
    "lit",
    "mux",
    "select",
    "transpose",
    "idct_row_hc",
    "idct_col_hc",
    "build_initial_kernel",
    "build_opt_kernel",
    "chisel_initial",
    "chisel_opt",
    "all_designs",
]
