"""IDCT transforms in the hardware-construction idiom.

Pure functions over typed values — the Chisel style of describing
combinational dataflow.  Widths are inferred by the DSL operators, so the
description carries no explicit bit counts at all (compare with the
explicitly sized :mod:`repro.frontends.vlog.units`).
"""

from __future__ import annotations

from ...idct.constants import W1, W2, W3, W5, W6, W7
from .dsl import Sig

__all__ = ["idct_row_hc", "idct_col_hc"]


def idct_row_hc(b: list[Sig]) -> list[Sig]:
    """Row-wise Chen-Wang butterfly over eight signed values."""
    x1 = b[4] << 11
    x2, x3, x4 = b[6], b[2], b[1]
    x5, x6, x7 = b[7], b[5], b[3]
    x0 = (b[0] << 11) + 128

    # first stage
    x8 = (x4 + x5) * W7
    x4, x5 = x8 + x4 * (W1 - W7), x8 - x5 * (W1 + W7)
    x8 = (x6 + x7) * W3
    x6, x7 = x8 - x6 * (W3 - W5), x8 - x7 * (W3 + W5)

    # second stage
    x8, x0 = x0 + x1, x0 - x1
    x1 = (x3 + x2) * W6
    x2, x3 = x1 - x2 * (W2 + W6), x1 + x3 * (W2 - W6)
    x1, x4 = x4 + x6, x4 - x6
    x6, x5 = x5 + x7, x5 - x7

    # third stage
    x7, x8 = x8 + x3, x8 - x3
    x3, x0 = x0 + x2, x0 - x2
    x2 = ((x4 + x5) * 181 + 128) >> 8
    x4 = ((x4 - x5) * 181 + 128) >> 8

    # fourth stage
    return [
        (x7 + x1) >> 8, (x3 + x2) >> 8, (x0 + x4) >> 8, (x8 + x6) >> 8,
        (x8 - x6) >> 8, (x0 - x4) >> 8, (x3 - x2) >> 8, (x7 - x1) >> 8,
    ]


def idct_col_hc(b: list[Sig]) -> list[Sig]:
    """Column-wise Chen-Wang butterfly with 9-bit saturation."""
    x1 = b[4] << 8
    x2, x3, x4 = b[6], b[2], b[1]
    x5, x6, x7 = b[7], b[5], b[3]
    x0 = (b[0] << 8) + 8192

    # first stage
    x8 = (x4 + x5) * W7 + 4
    x4, x5 = (x8 + x4 * (W1 - W7)) >> 3, (x8 - x5 * (W1 + W7)) >> 3
    x8 = (x6 + x7) * W3 + 4
    x6, x7 = (x8 - x6 * (W3 - W5)) >> 3, (x8 - x7 * (W3 + W5)) >> 3

    # second stage
    x8, x0 = x0 + x1, x0 - x1
    x1 = (x3 + x2) * W6 + 4
    x2, x3 = (x1 - x2 * (W2 + W6)) >> 3, (x1 + x3 * (W2 - W6)) >> 3
    x1, x4 = x4 + x6, x4 - x6
    x6, x5 = x5 + x7, x5 - x7

    # third stage
    x7, x8 = x8 + x3, x8 - x3
    x3, x0 = x0 + x2, x0 - x2
    x2 = ((x4 + x5) * 181 + 128) >> 8
    x4 = ((x4 - x5) * 181 + 128) >> 8

    # fourth stage with saturation
    return [
        ((x7 + x1) >> 14).clip(-256, 255),
        ((x3 + x2) >> 14).clip(-256, 255),
        ((x0 + x4) >> 14).clip(-256, 255),
        ((x8 + x6) >> 14).clip(-256, 255),
        ((x8 - x6) >> 14).clip(-256, 255),
        ((x0 - x4) >> 14).clip(-256, 255),
        ((x3 - x2) >> 14).clip(-256, 255),
        ((x7 - x1) >> 14).clip(-256, 255),
    ]
