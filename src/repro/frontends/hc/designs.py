"""Chisel-like IDCT designs: initial (combinational) and optimized.

The descriptions are deliberately concise: functional transforms, list
comprehensions for replication, a ``transpose`` that is pure wiring, and
the DSL's width inference doing the bookkeeping the Verilog baseline
spells out by hand.
"""

from __future__ import annotations

from ...axis.spec import KernelSpec, KernelStyle
from ...axis.wrapper import build_axis_wrapper
from ...rtl import Module
from ..base import Design, SourceArtifact, source_of, traced_build
from .dsl import HcModule, Sig, lit, mux, select, transpose
from .idct import idct_col_hc, idct_row_hc

__all__ = [
    "build_initial_kernel",
    "build_opt_kernel",
    "chisel_initial",
    "chisel_opt",
    "all_designs",
]

ROWS, COLS, IN_W, OUT_W = 8, 8, 12, 9


def _unpack_row(bus: Sig, width: int) -> list[Sig]:
    """Split a packed beat into signed elements."""
    return [bus.bits((i + 1) * width - 1, i * width).as_signed()
            for i in range(COLS)]


def _pack(values: list[Sig], width: int) -> Sig:
    """Concatenate elements (LSB-first) at a uniform width."""
    from ...rtl import ops

    resized = [v.resize(width).expr for v in values]
    return Sig(ops.cat(*reversed(resized)), signed=False)


def build_initial_kernel() -> Module:
    """Combinational matrix kernel: two functional passes and a transpose."""
    hc = HcModule("idct_hc_initial")
    in_mat = hc.input("in_mat", ROWS * COLS * IN_W, signed=False)
    rows = [
        _unpack_row(in_mat.bits((r + 1) * COLS * IN_W - 1, r * COLS * IN_W), IN_W)
        for r in range(ROWS)
    ]
    mid = [idct_row_hc(row) for row in rows]
    out_cols = [idct_col_hc(col) for col in transpose(mid)]
    out_rows = transpose(out_cols)
    hc.output("out_mat", _pack([e for row in out_rows for e in row], OUT_W))
    return hc.module


def build_opt_kernel() -> Module:
    """Row-serial kernel: one row pass, one column pass, ping-pong buffers.

    The same architecture as the optimized Verilog design, expressed with
    generators: register matrices come from comprehensions, column reads
    from ``select``, and the clock enable is threaded automatically.
    """
    hc = HcModule("idct_hc_opt", kernel=True)
    in_row = hc.input("in_row", COLS * IN_W, signed=False)
    in_valid = hc.input("in_valid", 1, signed=False)

    row_res = idct_row_hc(_unpack_row(in_row, IN_W))
    row_res = [hc.wire(f"rowres{c}", v) for c, v in enumerate(row_res)]
    mid_width = max(v.width for v in row_res)

    in_cnt, in_wrap = hc.counter("in_cnt", ROWS, advance=in_valid)
    in_sel = hc.reg_declare("in_sel", 1, signed=False)
    hc.drive(in_sel, mux(in_valid & in_wrap, ~in_sel, in_sel))

    mid = [
        [
            [
                hc.reg(
                    f"mid{half}_{r}_{c}",
                    row_res[c].resize(mid_width),
                    en=in_valid & in_cnt.eq(r) & in_sel.eq(half),
                )
                for c in range(COLS)
            ]
            for r in range(ROWS)
        ]
        for half in range(2)
    ]

    # Column phase runs for 8 cycles each time a mid half completes.
    trigger = hc.wire("trigger", in_valid & in_wrap)
    col_active = hc.reg_declare("col_active", 1, signed=False)
    col_cnt, col_wrap = hc.counter("col_cnt", COLS, advance=col_active)
    finish = hc.wire("finish", col_active & col_wrap)
    hc.drive(col_active, mux(trigger, lit(1, 1, False), mux(finish, lit(0, 1, False), col_active)))
    col_sel = hc.reg_declare("col_sel", 1, signed=False)
    hc.drive(col_sel, mux(trigger, in_sel, col_sel))

    col_in = [
        mux(
            col_sel.eq(0),
            select(col_cnt, mid[0][r]),
            select(col_cnt, mid[1][r]),
        ).as_signed()
        for r in range(ROWS)
    ]
    col_out = idct_col_hc(col_in)

    out_sel = hc.reg_declare("out_sel", 1, signed=False)
    hc.drive(out_sel, mux(finish, ~out_sel, out_sel))
    obuf = [
        [
            [
                hc.reg(
                    f"out{half}_{r}_{c}",
                    col_out[r],
                    en=col_active & col_cnt.eq(c) & out_sel.eq(half),
                )
                for c in range(COLS)
            ]
            for r in range(ROWS)
        ]
        for half in range(2)
    ]

    # Output streaming phase.
    out_active = hc.reg_declare("out_active", 1, signed=False)
    out_cnt, out_wrap = hc.counter("out_cnt", ROWS, advance=out_active)
    hc.drive(
        out_active,
        mux(finish, lit(1, 1, False),
            mux(out_active & out_wrap, lit(0, 1, False), out_active)),
    )
    read_sel = hc.reg_declare("read_sel", 1, signed=False)
    hc.drive(read_sel, mux(finish, out_sel, read_sel))

    picked = [
        mux(
            read_sel.eq(0),
            select(out_cnt, [_pack(obuf[0][r], OUT_W) for r in range(ROWS)]),
            select(out_cnt, [_pack(obuf[1][r], OUT_W) for r in range(ROWS)]),
        )
    ]
    hc.output("out_row", picked[0], width=COLS * OUT_W)
    hc.output("out_valid", out_active, width=1)
    return hc.module


def _sources(*builders) -> list[SourceArtifact]:
    from . import idct as idct_mod

    artifacts = [
        source_of(idct_mod.idct_row_hc, "IdctRow.scala"),
        source_of(idct_mod.idct_col_hc, "IdctCol.scala"),
    ]
    for builder in builders:
        artifacts.append(source_of(builder, f"{builder.__name__}.scala"))
    # The hand-written AXI adapter (Chisel flows write their own too).
    from ...axis import wrapper as axis_wrapper

    artifacts.append(source_of(axis_wrapper._build_matrix_wrapper, "AxisAdapter.scala"))
    return artifacts


@traced_build("hc")
def chisel_initial() -> Design:
    spec = KernelSpec(style=KernelStyle.COMB_MATRIX, rows=ROWS, cols=COLS,
                      in_width=IN_W, out_width=OUT_W)
    top = build_axis_wrapper(build_initial_kernel(), spec, name="chisel_initial_top")
    return Design(
        name="chisel-initial",
        language="Chisel",
        tool="Chisel",
        config="initial",
        top=top,
        spec=spec,
        sources=_sources(build_initial_kernel),
    )


@traced_build("hc")
def chisel_opt() -> Design:
    spec = KernelSpec(style=KernelStyle.ROW_SERIAL, rows=ROWS, cols=COLS,
                      in_width=IN_W, out_width=OUT_W, latency=16)
    top = build_axis_wrapper(build_opt_kernel(), spec, name="chisel_opt_top")
    return Design(
        name="chisel-opt",
        language="Chisel",
        tool="Chisel",
        config="opt",
        top=top,
        spec=spec,
        sources=_sources(build_opt_kernel),
    )


def all_designs() -> list[Design]:
    return [chisel_initial(), chisel_opt()]
