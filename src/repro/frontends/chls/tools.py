"""Tool personalities: the Bambu-like and Vivado-HLS-like C flows.

Both tools share the compiler; they differ exactly where the paper says
the real tools differ:

* **BambuLike** is driven by command-line options — memory ``channels``
  (one vs two read/write ports), a memory allocation policy, optimization
  presets, and speculative scheduling.  It always inlines, never
  pipelines, and relies on a hand-written Verilog AXI adapter (whose LOC
  the paper counts separately).  ``bambu_sweep()`` generates the paper's
  42 configurations.
* **VivadoHlsLike** is driven by source pragmas.  Push-button (the
  "initial" experiment) it does *not* inline the row/column functions —
  each call boundary costs handshake cycles, the paper's 18x slowdown —
  while the optimized source adds INLINE / ARRAY_PARTITION / PIPELINE
  pragmas and an ``INTERFACE axis`` that the tool turns into the stream
  shell automatically.
"""

from __future__ import annotations

import importlib.resources
from dataclasses import dataclass, replace

from ...axis.spec import KernelSpec, KernelStyle
from ..base import Design, SourceArtifact, traced_build
from .compiler import HlsOptions, HlsResult
from .interface import build_axis_top
from .parser import parse, parse_pragma
from .transform import inline_program

__all__ = [
    "load_source",
    "BambuConfig",
    "bambu_design",
    "bambu_sweep",
    "vivado_design",
    "bambu_initial",
    "bambu_opt",
    "vivado_initial",
    "vivado_opt",
    "all_designs",
]

ROWS, COLS, IN_W, OUT_W = 8, 8, 12, 9


def load_source(name: str) -> str:
    """Read one of the packaged C benchmark sources."""
    return (
        importlib.resources.files("repro.frontends.chls")
        .joinpath(f"sources/{name}")
        .read_text()
    )


def _collect_function_pragmas(source: str, top: str) -> tuple[frozenset, frozenset, bool]:
    """Extract partition/axis settings and function PIPELINE from ``top``."""
    program = parse(source)
    function = program.functions[top]
    partition = set()
    axis = set()
    fn_pipeline = False
    for pragma in function.pragmas:
        if pragma.directive == "ARRAY_PARTITION":
            variable = pragma.settings.get("variable")
            if variable:
                partition.add(variable)
        elif pragma.directive == "INTERFACE":
            if "axis" in pragma.settings:
                port = pragma.settings.get("port")
                if port:
                    axis.add(port)
        elif pragma.directive == "PIPELINE":
            fn_pipeline = True
    return frozenset(partition), frozenset(axis), fn_pipeline


def _spec() -> KernelSpec:
    return KernelSpec(style=KernelStyle.COMB_MATRIX, rows=ROWS, cols=COLS,
                      in_width=IN_W, out_width=OUT_W)


def _compile(source: str, options: HlsOptions, inline_all: bool,
             name: str) -> HlsResult:
    program = parse(source)
    partition, _axis, _fp = _collect_function_pragmas(source, "idct")
    options = replace(options, partition_arrays=partition)
    flat, _regions = inline_program(program, "idct", inline_all=inline_all)
    return build_axis_top(flat, options, name=name)


# ----------------------------------------------------------------------
# Bambu
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class BambuConfig:
    """One Bambu command line (the knobs the paper's 42-config sweep uses)."""

    channels: str = "MEM_ACC_11"       # or MEM_ACC_NN / MEM_ACC_MP
    memory_policy: str = "LSS"         # LSS | GSS | NO_BRAM
    preset: str = "BALANCED"           # PERFORMANCE | AREA | BALANCED
    speculative_sdc: bool = False

    def to_options(self) -> HlsOptions:
        ports = 2 if self.channels == "MEM_ACC_MP" else 1
        clock = {"PERFORMANCE": 8.0, "BALANCED": 10.0, "AREA": 14.0}[self.preset]
        if self.speculative_sdc:
            clock *= 1.15  # deeper chaining per cycle
        return HlsOptions(
            clock_period_ns=clock,
            mem_read_ports=ports,
            mem_write_ports=ports,
            chaining=self.preset != "AREA",
            bram_policy=self.memory_policy,
        )

    def command_line(self) -> str:
        parts = [
            f"bambu idct.c --channels-type={self.channels}",
            f"--memory-allocation-policy={self.memory_policy}",
            f"-O{'3' if self.preset == 'PERFORMANCE' else '2'}",
        ]
        if self.speculative_sdc:
            parts.append("--speculative-sdc-scheduling")
        return " ".join(parts)


@traced_build("chls")
def bambu_design(config: BambuConfig, label: str) -> Design:
    source = load_source("idct.c")
    result = _compile(source, config.to_options(), inline_all=True,
                      name=f"bambu_{label}")
    from ...axis import wrapper as axis_wrapper
    from ..base import source_of

    design = Design(
        name=f"bambu-{label}",
        language="C",
        tool="Bambu",
        config=label,
        top=result.module,
        spec=_spec(),
        sources=[
            SourceArtifact("idct.c", source),
            SourceArtifact("bambu.cfg", config.command_line() + "\n", kind="config"),
            # Bambu cannot generate the AXI adapter; it is written by hand
            # in Verilog (counted, as the paper does).
            source_of(axis_wrapper._build_matrix_wrapper, "axis_adapter.v"),
        ],
    )
    design.meta["hls"] = result
    design.meta["bambu_config"] = config
    return design


def bambu_sweep() -> list[BambuConfig]:
    """The paper's 42 Bambu configurations."""
    configs = []
    for channels in ("MEM_ACC_11", "MEM_ACC_MP"):
        for policy in ("LSS", "GSS", "NO_BRAM"):
            for preset in ("PERFORMANCE", "BALANCED", "AREA"):
                for speculative in (False, True):
                    configs.append(BambuConfig(channels, policy, preset, speculative))
    # 36 so far; the remaining 6 vary the target clock via extra presets.
    for preset in ("PERFORMANCE", "BALANCED", "AREA"):
        configs.append(BambuConfig("MEM_ACC_11", "LSS", preset, True))
        configs.append(BambuConfig("MEM_ACC_MP", "LSS", preset, False))
    return configs[:42]


def bambu_initial() -> Design:
    """Default channels MEM_ACC_11 + LSS, as the paper's starting point."""
    return bambu_design(BambuConfig(), "initial")


def bambu_opt() -> Design:
    """BAMBU-PERFORMANCE-MP with speculative SDC scheduling (the paper's best)."""
    return bambu_design(
        BambuConfig(channels="MEM_ACC_MP", memory_policy="LSS",
                    preset="PERFORMANCE", speculative_sdc=True),
        "opt",
    )


# ----------------------------------------------------------------------
# Vivado HLS
# ----------------------------------------------------------------------

@traced_build("chls")
def vivado_design(source_name: str, label: str,
                  clock_period_ns: float = 10.0) -> Design:
    source = load_source(source_name)
    options = HlsOptions(
        clock_period_ns=clock_period_ns,
        mem_read_ports=2,
        mem_write_ports=1,  # true dual-port BRAM: 2R shared with 1W
        # ap_start/ap_done handshake cycles per non-inlined call boundary.
        # 4 per marker (8 per call) keeps push-button Vivado HLS the
        # slowest tool even though its dual-port BRAM halves load states:
        # the interface cost must exceed what the extra read port saves.
        call_overhead=4,
    )
    result = _compile(source, options, inline_all=False,
                      name=f"vivado_{label}")
    design = Design(
        name=f"vivado-hls-{label}",
        language="C",
        tool="Vivado HLS",
        config=label,
        top=result.module,
        spec=_spec(),
        sources=[SourceArtifact(source_name, source)],
    )
    design.meta["hls"] = result
    return design


def vivado_initial() -> Design:
    """Push-button compilation of the unannotated source."""
    return vivado_design("idct.c", "initial")


def vivado_opt() -> Design:
    """The pragma-annotated source (INLINE + ARRAY_PARTITION + PIPELINE)."""
    return vivado_design("idct_opt.c", "opt")


def all_designs() -> list[Design]:
    return [bambu_initial(), bambu_opt(), vivado_initial(), vivado_opt()]
