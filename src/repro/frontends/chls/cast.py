"""Abstract syntax tree for the mini-C HLS language."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Program", "Function", "Param", "Pragma",
    "Stmt", "DeclStmt", "AssignStmt", "StoreStmt", "IfStmt", "ForStmt",
    "ReturnStmt", "ExprStmt", "Block",
    "Expr", "NumExpr", "VarExpr", "IndexExpr", "BinExpr", "UnExpr",
    "CondExpr", "CallExpr",
]


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------

class Expr:
    """Base class for expression nodes."""


@dataclass(frozen=True)
class NumExpr(Expr):
    value: int


@dataclass(frozen=True)
class VarExpr(Expr):
    name: str


@dataclass(frozen=True)
class IndexExpr(Expr):
    array: str
    index: Expr


@dataclass(frozen=True)
class BinExpr(Expr):
    op: str  # + - * / % << >> & | ^ < <= > >= == != && ||
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnExpr(Expr):
    op: str  # - ! ~
    operand: Expr


@dataclass(frozen=True)
class CondExpr(Expr):
    cond: Expr
    if_true: Expr
    if_false: Expr


@dataclass(frozen=True)
class CallExpr(Expr):
    callee: str
    args: tuple[Expr, ...]


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------

class Stmt:
    """Base class for statement nodes."""


@dataclass
class Pragma:
    """One ``#pragma HLS`` directive, parsed into key/value settings."""

    directive: str               # PIPELINE / UNROLL / INLINE / ...
    settings: dict[str, str] = field(default_factory=dict)
    line: int = 0


@dataclass
class Block(Stmt):
    statements: list[Stmt] = field(default_factory=list)


@dataclass
class DeclStmt(Stmt):
    ctype: str                   # "int" | "short"
    name: str
    array_size: int | None = None
    init: Expr | None = None


@dataclass
class AssignStmt(Stmt):
    name: str
    value: Expr


@dataclass
class StoreStmt(Stmt):
    array: str
    index: Expr
    value: Expr


@dataclass
class IfStmt(Stmt):
    cond: Expr
    then_body: Block = field(default_factory=Block)
    else_body: Block | None = None


@dataclass
class ForStmt(Stmt):
    var: str
    start: Expr
    bound: Expr                  # loop runs while var < bound
    step: int = 1
    body: Block = field(default_factory=Block)
    pragmas: list[Pragma] = field(default_factory=list)


@dataclass
class ReturnStmt(Stmt):
    value: Expr | None = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr


# ----------------------------------------------------------------------
# declarations
# ----------------------------------------------------------------------

@dataclass
class Param:
    ctype: str                   # "int" | "short"
    name: str
    is_array: bool = False
    array_size: int | None = None


@dataclass
class Function:
    return_type: str             # "int" | "short" | "void"
    name: str
    params: list[Param] = field(default_factory=list)
    body: Block = field(default_factory=Block)
    pragmas: list[Pragma] = field(default_factory=list)


@dataclass
class Program:
    functions: dict[str, Function] = field(default_factory=dict)
