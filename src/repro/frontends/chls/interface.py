"""HLS interface synthesis: AXI-Stream tops and plain function tops.

``build_axis_top`` reproduces what the paper's tools generate around the C
kernel: a row-by-row AXI-Stream slave that stages the matrix into the
array storage, the compiled computation FSM, and an AXI-Stream master that
drains the result — all sharing the array's physical memory ports, which
is exactly why the sequential C flows are slow (64 element transfers
through one or two ports per direction).

``build_function_top`` exposes a start/done handshake instead, for unit
testing compiled functions directly (arrays are reached through the
simulator's memory backdoor).
"""

from __future__ import annotations

from ...core.errors import HlsError
from ...obs import metrics as obs_metrics
from ...obs import trace as obs_trace
from ...rtl import Module, ops
from ...rtl.ir import Expr, Ref
from .cast import Function
from .compiler import Compiler, HlsOptions, HlsResult, INT_W, SHORT_W, _Transition

__all__ = ["build_axis_top", "build_function_top"]

ROWS, COLS, IN_W, OUT_W = 8, 8, 12, 9


def build_axis_top(function: Function, options: HlsOptions,
                   name: str | None = None) -> HlsResult:
    """Compile ``function`` with a generated row-by-row AXI-Stream shell.

    The function must take exactly one ``short[64]`` array parameter,
    transformed in place (the benchmark's shape).
    """
    with obs_trace.span("chls.compile", function=function.name,
                        top=name or "") as span:
        result = _build_axis_top(function, options, name)
        if obs_trace.enabled():
            obs_metrics.inc("chls.schedule.states", result.n_states)
            obs_metrics.inc("chls.schedule.iterations", result.schedule_retries)
            span.set(states=result.n_states, regions=result.regions,
                     retries=result.schedule_retries)
        return result


def _build_axis_top(function: Function, options: HlsOptions,
                    name: str | None = None) -> HlsResult:
    arrays = [p for p in function.params if p.is_array]
    if len(arrays) != 1 or any(not p.is_array for p in function.params):
        raise HlsError("axis interface synthesis expects one array parameter")
    param = arrays[0]
    size = param.array_size or ROWS * COLS
    if size != ROWS * COLS:
        raise HlsError("the streamed array must be 8x8")

    compiler = Compiler(function, options, name=name)
    module = compiler.module
    s_tdata = module.input("s_tdata", COLS * IN_W)
    s_tvalid = module.input("s_tvalid", 1)
    s_tlast = module.input("s_tlast", 1)
    m_tready = module.input("m_tready", 1)
    s_tready = module.output("s_tready", 1)
    m_tdata = module.output("m_tdata", COLS * OUT_W)
    m_tvalid = module.output("m_tvalid", 1)
    m_tlast = module.output("m_tlast", 1)
    error = module.output("error", 1)

    compiler.declare_array(param.name, size,
                           SHORT_W if param.ctype == "short" else INT_W)
    compiler._declare_var("__beat", 4)
    compiler._declare_var("__hold", COLS * IN_W)
    compiler._declare_var("__err", 1)

    from .cast import BinExpr, NumExpr, VarExpr
    from .compiler import _BankArray

    partitioned = isinstance(compiler._arrays[param.name], _BankArray)
    wait_in_states: list[int] = []
    wait_out_states: list[int] = []

    # ------------------------------------------------------------------
    # staging in
    # ------------------------------------------------------------------
    compiler._chain["__beat"] = ops.const(0, 4)
    compiler._close(_Transition("goto", compiler._state_index() + 1))

    beat_raw = Ref(compiler._vars["__beat"][0])
    last_beat = ops.eq(beat_raw, ops.const(ROWS - 1, 4))
    if partitioned:
        # One self-looping wait state: with a register bank there is no
        # port bottleneck, so all eight elements store in the accept cycle.
        state_w = 16
        compiler._cur_gate = Ref(s_tvalid)
        bank_in = compiler._arrays[param.name]
        for k in range(COLS):
            element = ops.sext(
                ops.bits(Ref(s_tdata), (k + 1) * IN_W - 1, k * IN_W), SHORT_W
            )
            # Element 8*beat + k is the only reachable target for lane k:
            # decode by beat instead of a full index compare.
            for b in range(ROWS):
                elem = bank_in.element(b * COLS + k)
                old_val = compiler._chain.get(elem)
                if old_val is None:
                    old_val = Ref(compiler._vars[elem][0])
                hit = ops.eq(beat_raw, ops.const(b, 4))
                compiler._chain[elem] = ops.mux(
                    hit, element, ops.resize(old_val, SHORT_W, signed=True)
                )
        compiler._chain["__beat"] = ops.mux(
            last_beat, ops.const(0, 4),
            ops.trunc(ops.add(beat_raw, 1), 4),
        )
        compiler._chain["__err"] = ops.bor(
            Ref(compiler._vars["__err"][0]), ops.bxor(Ref(s_tlast), last_beat)
        )
        here = compiler._state_index()
        wait_in_states.append(here)
        next_expr = ops.mux(
            Ref(s_tvalid),
            ops.mux(last_beat, ops.const(here + 1, state_w),
                    ops.const(here, state_w)),
            ops.const(here, state_w),
        )
        compiler._close(_Transition("expr", next_expr=next_expr))
    else:
        in_loop_first = compiler._state_index()
        # Wait state: capture the beat and check TLAST alignment.
        compiler._cur_gate = Ref(s_tvalid)
        compiler._chain["__hold"] = Ref(s_tdata)
        compiler._chain["__err"] = ops.bor(
            Ref(compiler._vars["__err"][0]), ops.bxor(Ref(s_tlast), last_beat)
        )
        wait_in_states.append(compiler._state_index())
        compiler._close(_Transition("wait", cond=Ref(s_tvalid),
                                    target=compiler._state_index() + 1))

        # Element stores (the scheduler splits them by write-port budget).
        hold_raw = Ref(compiler._vars["__hold"][0])
        for k in range(COLS):
            element = ops.sext(ops.bits(hold_raw, (k + 1) * IN_W - 1, k * IN_W),
                               INT_W)
            index = BinExpr("+", BinExpr("*", VarExpr("__beat"), NumExpr(COLS)),
                            NumExpr(k))
            compiler._try_in_cycle(
                lambda idx=index, val=element: compiler._store(param.name, idx, val)
            )
        # Advance the beat; loop back for more rows.
        beat_inc = ops.trunc(ops.add(Ref(compiler._vars["__beat"][0]), 1), 4)
        compiler._chain["__beat"] = beat_inc
        not_done = ops.ne(beat_inc, ops.const(ROWS, 4))
        tail = compiler._close(_Transition("branch", cond=not_done,
                                           target=in_loop_first))
        after_in = compiler._state_index()
        tail.transition.target_false = after_in

    # ------------------------------------------------------------------
    # the computation itself
    # ------------------------------------------------------------------
    compiler.compile_block(function.body)
    if compiler._cycle_in_use():
        compiler._close(_Transition("goto", compiler._state_index() + 1))

    # ------------------------------------------------------------------
    # staging out
    # ------------------------------------------------------------------
    state_w = 16  # resized by the FSM builder
    compiler._chain["__beat"] = ops.const(0, 4)
    compiler._close(_Transition("goto", compiler._state_index() + 1))
    if partitioned:
        # One self-looping wait state reading the bank combinationally.
        beat_reg = Ref(compiler._vars["__beat"][0])
        last_out = ops.eq(beat_reg, ops.const(ROWS - 1, 4))
        bank = compiler._arrays[param.name]
        beat_bits = ops.bits(beat_reg, 2, 0)
        elements = []
        for k in range(COLS):
            taps = [
                ops.bits(Ref(compiler._vars[bank.element(b * COLS + k)][0]),
                         OUT_W - 1, 0)
                for b in range(ROWS)
            ]
            elements.append(ops.select(beat_bits, taps, signed=False))
        packed = ops.cat(*reversed(elements))
        compiler._cur_gate = Ref(m_tready)
        compiler._chain["__beat"] = ops.mux(
            last_out, ops.const(0, 4),
            ops.trunc(ops.add(beat_reg, 1), 4),
        )
        wait_out_idx = compiler._state_index()
        wait_out_states.append(wait_out_idx)
        next_expr = ops.mux(
            Ref(m_tready),
            ops.mux(last_out, ops.const(0, state_w),
                    ops.const(wait_out_idx + 1, state_w)),
            ops.const(wait_out_idx, state_w),
        )
        # The single wait state loops on itself across beats; on the last
        # consumed beat it falls through to a dead state that wraps to 0
        # (folded below by pointing it straight at 0).
        next_expr = ops.mux(
            Ref(m_tready),
            ops.mux(last_out, ops.const(0, state_w),
                    ops.const(wait_out_idx, state_w)),
            ops.const(wait_out_idx, state_w),
        )
        compiler._close(_Transition("expr", next_expr=next_expr))
    else:
        out_loop_first = compiler._state_index()
        for k in range(COLS):
            compiler._declare_var(f"__o{k}", SHORT_W)
            index = BinExpr("+", BinExpr("*", VarExpr("__beat"), NumExpr(COLS)),
                            NumExpr(k))
            compiler._try_in_cycle(
                lambda idx=index, slot=k: compiler._write_var(
                    f"__o{slot}", compiler._load(param.name, idx)
                )
            )
        if compiler._cycle_in_use():
            compiler._close(_Transition("goto", compiler._state_index() + 1))
        # Present the beat and wait for the sink: on consumption, either
        # loop for the next beat or restart at state 0 for the next matrix.
        beat_reg = Ref(compiler._vars["__beat"][0])
        last_out = ops.eq(beat_reg, ops.const(ROWS - 1, 4))
        beat_inc = ops.trunc(ops.add(beat_reg, 1), 4)
        compiler._chain["__beat"] = ops.mux(last_out, ops.const(0, 4), beat_inc)
        compiler._cur_gate = Ref(m_tready)
        wait_out_idx = compiler._state_index()
        wait_out_states.append(wait_out_idx)
        next_expr = ops.mux(
            Ref(m_tready),
            ops.mux(last_out, ops.const(0, state_w),
                    ops.const(out_loop_first, state_w)),
            ops.const(wait_out_idx, state_w),
        )
        compiler._close(_Transition("expr", next_expr=next_expr))

    compiler.build_fsm()

    # Stream-side outputs.
    module.assign(s_tready, compiler.states_matching(wait_in_states))
    module.assign(m_tvalid, compiler.states_matching(wait_out_states))
    if partitioned:
        module.assign(m_tdata, packed)
    else:
        packed = ops.cat(*[
            ops.bits(Ref(compiler._vars[f"__o{k}"][0]), OUT_W - 1, 0)
            for k in reversed(range(COLS))
        ])
        module.assign(m_tdata, packed)
    module.assign(
        m_tlast,
        ops.band(
            compiler.states_matching(wait_out_states),
            ops.eq(Ref(compiler._vars["__beat"][0]), ops.const(ROWS - 1, 4)),
        ),
    )
    module.assign(error, Ref(compiler._vars["__err"][0]))

    return HlsResult(module=module, n_states=len(compiler._states),
                     loop_info=compiler.loop_info, regions=compiler.regions,
                     schedule_retries=compiler.schedule_retries)


def build_function_top(function: Function, options: HlsOptions,
                       name: str | None = None) -> HlsResult:
    """Compile ``function`` behind a start/done handshake (for testing)."""
    compiler = Compiler(function, options, name=name)
    module = compiler.module
    start = module.input("start", 1)
    done = module.output("done", 1)

    for param in function.params:
        width = SHORT_W if param.ctype == "short" else INT_W
        if param.is_array:
            if param.array_size is None:
                raise HlsError(f"array parameter {param.name!r} needs a size")
            compiler.declare_array(param.name, param.array_size, width)
        else:
            port = module.input(f"arg_{param.name}", width)
            compiler._declare_var(param.name, width)
            compiler._chain[param.name] = Ref(port)

    # Idle state: wait for start (captures scalar arguments on the way in).
    compiler._cur_gate = Ref(start)
    idle = compiler._close(_Transition("wait", cond=Ref(start),
                                       target=compiler._state_index() + 1))

    compiler.compile_block(function.body)
    if compiler._cycle_in_use():
        compiler._close(_Transition("goto", compiler._state_index() + 1))
    final = compiler._close(_Transition("branch", cond=Ref(start)))
    final.transition.target = final.index       # hold while start stays high
    final.transition.target_false = idle.index  # rearm when start drops

    compiler.build_fsm()
    module.assign(done, compiler._in_state(final.index))
    if function.return_type != "void":
        retval = module.output("retval", INT_W)
        if "__retval" not in compiler._vars:
            raise HlsError(f"{function.name}: non-void function never returns")
        module.assign(retval, ops.sext(Ref(compiler._vars["__retval"][0]), INT_W))
    return HlsResult(module=module, n_states=len(compiler._states),
                     loop_info=compiler.loop_info, regions=compiler.regions,
                     schedule_retries=compiler.schedule_retries)
