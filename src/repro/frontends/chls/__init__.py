"""Mini-C HLS frontend: parser, scheduler, FSM codegen, tool personalities."""

from .compiler import Compiler, HlsOptions, HlsResult
from .interface import build_axis_top, build_function_top
from .lexer import tokenize
from .parser import parse, parse_pragma
from .tools import (
    BambuConfig,
    all_designs,
    bambu_design,
    bambu_initial,
    bambu_opt,
    bambu_sweep,
    load_source,
    vivado_design,
    vivado_initial,
    vivado_opt,
)
from .transform import inline_program, unroll_loop

__all__ = [
    "tokenize",
    "parse",
    "parse_pragma",
    "inline_program",
    "unroll_loop",
    "Compiler",
    "HlsOptions",
    "HlsResult",
    "build_axis_top",
    "build_function_top",
    "load_source",
    "BambuConfig",
    "bambu_design",
    "bambu_sweep",
    "bambu_initial",
    "bambu_opt",
    "vivado_design",
    "vivado_initial",
    "vivado_opt",
    "all_designs",
]
