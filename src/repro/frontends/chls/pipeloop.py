"""Software pipelining of HLS loops (``#pragma HLS PIPELINE``).

A pipelined loop becomes one shared body datapath initiating a new
iteration every cycle: the body is traced symbolically (induction variable
= a hardware counter), staged by the same automatic pipeliner the flow
frontend uses, and instantiated inside the FSM, which parks in a single
"loop" state for ``trip + depth`` cycles.

Legality checks (each rejection mirrors a real HLS tool diagnostic):

* constant trip count, step +1;
* body is straight-line (declarations, assignments, stores; ternaries ok);
* no loop-carried scalar dependences (every scalar is written before read
  or is loop-invariant);
* arrays inside the body must be completely partitioned (register banks);
* per array: loads must not follow a store in the body, and in-place
  arrays must have provably disjoint per-iteration index sets (affine
  ``a*i + b`` with matching ``a`` and ``|Δb| < |a|``).
"""

from __future__ import annotations

import math

from ...core.errors import HlsError
from ...rtl import ops
from ...rtl.ir import Expr, Ref
from ..flow.pipeline import pipeline_kernel
from ..hc.dsl import Sig, lit, mux as sig_mux, select as sig_select
from .cast import (
    AssignStmt,
    BinExpr,
    Block,
    CondExpr,
    DeclStmt,
    Expr as CExpr,
    ForStmt,
    IndexExpr,
    NumExpr,
    StoreStmt,
    UnExpr,
    VarExpr,
)
from .transform import const_value, fold_expr, substitute_expr

__all__ = ["compile_pipelined_loop"]

INT_W = 32


def _contains_load(expr: CExpr) -> bool:
    if isinstance(expr, IndexExpr):
        return True
    if isinstance(expr, BinExpr):
        return _contains_load(expr.left) or _contains_load(expr.right)
    if isinstance(expr, UnExpr):
        return _contains_load(expr.operand)
    if isinstance(expr, CondExpr):
        return (_contains_load(expr.cond) or _contains_load(expr.if_true)
                or _contains_load(expr.if_false))
    return False


def _affine(index: CExpr, var: str) -> tuple[int, int] | None:
    """Return (a, b) when ``index == a*var + b``, else None."""
    values = []
    for k in (0, 1, 2):
        folded = const_value(substitute_expr(index, {var: NumExpr(k)}, {}))
        if folded is None:
            return None
        values.append(folded)
    b = values[0]
    a = values[1] - b
    if values[2] != b + 2 * a:
        return None
    return a, b


def _flatten_body(block: Block) -> list:
    out = []
    for stmt in block.statements:
        if isinstance(stmt, Block):
            out.extend(_flatten_body(stmt))
        else:
            out.append(stmt)
    return out


class _BodyAnalysis:
    """Reads/writes/legality of a pipelined loop body.

    Indices are recorded *copy-propagated* (scalar locals substituted by
    their defining expressions) so the affine dependence test sees
    ``8*i + 3`` rather than ``off + 3``.
    """

    def __init__(self, stmts: list, var: str) -> None:
        self.loads: dict[str, list[CExpr]] = {}
        self.stores: list[StoreStmt] = []
        self.store_indices: list[CExpr] = []   # resolved, parallel to stores
        self.invariant_reads: list[str] = []
        self.locals: set[str] = set()
        written: set[str] = set()
        stored_arrays: set[str] = set()
        defs: dict[str, CExpr] = {}

        def resolve(expr: CExpr) -> CExpr:
            return fold_expr(substitute_expr(expr, defs, {}))

        def scan_expr(expr: CExpr) -> None:
            expr = fold_expr(expr)
            if isinstance(expr, VarExpr):
                if expr.name != var and expr.name not in written:
                    if expr.name not in self.invariant_reads:
                        self.invariant_reads.append(expr.name)
                    if expr.name in self.locals:
                        raise HlsError(
                            f"pipelined loop: {expr.name!r} is loop-carried"
                        )
            elif isinstance(expr, IndexExpr):
                if expr.array in stored_arrays:
                    raise HlsError(
                        f"pipelined loop: load of {expr.array!r} after a store"
                    )
                self.loads.setdefault(expr.array, []).append(resolve(expr.index))
                scan_expr(expr.index)
            elif isinstance(expr, BinExpr):
                scan_expr(expr.left)
                scan_expr(expr.right)
            elif isinstance(expr, UnExpr):
                scan_expr(expr.operand)
            elif isinstance(expr, CondExpr):
                scan_expr(expr.cond)
                scan_expr(expr.if_true)
                scan_expr(expr.if_false)

        def record_def(name: str, value: CExpr | None) -> None:
            if value is not None and not _contains_load(value):
                defs[name] = resolve(value)
            else:
                defs.pop(name, None)

        for stmt in stmts:
            if isinstance(stmt, DeclStmt):
                if stmt.array_size is not None:
                    raise HlsError("pipelined loop: local arrays unsupported")
                if stmt.init is not None:
                    scan_expr(stmt.init)
                self.locals.add(stmt.name)
                written.add(stmt.name)
                record_def(stmt.name, stmt.init)
            elif isinstance(stmt, AssignStmt):
                scan_expr(stmt.value)
                self.locals.add(stmt.name)
                written.add(stmt.name)
                record_def(stmt.name, stmt.value)
            elif isinstance(stmt, StoreStmt):
                scan_expr(stmt.index)
                scan_expr(stmt.value)
                self.stores.append(stmt)
                self.store_indices.append(resolve(stmt.index))
                stored_arrays.add(stmt.array)
            else:
                raise HlsError(
                    f"pipelined loop body must be straight-line, got "
                    f"{type(stmt).__name__}"
                )
        # A scalar read before its (later) write carries state across
        # iterations — not pipelinable at II=1.
        for name in self.invariant_reads:
            if name in written:
                raise HlsError(f"pipelined loop: {name!r} is loop-carried")

    def check_inplace(self, var: str, trip: int) -> None:
        """In-place arrays need disjoint per-iteration index sets.

        With affine indices ``a*i + b``, a cross-iteration alias between a
        write at ``(a, b_w)`` and a read at ``(a, b_r)`` requires
        ``a * Δi == b_r - b_w`` for some ``0 < |Δi| < trip``.
        """
        for store, store_index in zip(self.stores, self.store_indices):
            reads = self.loads.get(store.array)
            if not reads:
                continue
            write_aff = _affine(store_index, var)
            if write_aff is None or write_aff[0] == 0:
                raise HlsError(
                    f"pipelined loop: cannot prove {store.array!r} writes "
                    f"disjoint across iterations"
                )
            a_w, b_w = write_aff
            for read_index in reads:
                read_aff = _affine(read_index, var)
                if read_aff is None or read_aff[0] != a_w:
                    raise HlsError(
                        f"pipelined loop: {store.array!r} read/write strides differ"
                    )
                delta = read_aff[1] - b_w
                if delta % a_w == 0 and 0 < abs(delta // a_w) < trip:
                    raise HlsError(
                        f"pipelined loop: {store.array!r} accesses alias "
                        f"across iterations"
                    )


def compile_pipelined_loop(compiler, stmt: ForStmt) -> None:
    """Lower one ``#pragma HLS PIPELINE`` loop into the compiler's FSM."""
    from .compiler import _BankArray, _Transition

    start = const_value(stmt.start)
    bound = const_value(stmt.bound)
    if start is None or bound is None or stmt.step != 1:
        raise HlsError("pipelined loops need constant bounds and step 1")
    trip = bound - start
    if trip <= 0:
        return

    stmts = _flatten_body(stmt.body)
    analysis = _BodyAnalysis(stmts, stmt.var)
    analysis.check_inplace(stmt.var, trip)

    banks: dict[str, _BankArray] = {}
    for name in set(analysis.loads) | {s.array for s in analysis.stores}:
        array = compiler._arrays.get(name)
        if array is None:
            raise HlsError(f"pipelined loop: unknown array {name!r}")
        if not isinstance(array, _BankArray):
            raise HlsError(
                f"pipelined loop: array {name!r} must be completely "
                f"partitioned (ARRAY_PARTITION)"
            )
        banks[name] = array

    iter_w = max(1, bound.bit_length() + 1)
    read_arrays = sorted(analysis.loads)
    invariants = [v for v in analysis.invariant_reads if v in compiler._vars]

    # ------------------------------------------------------------------
    # trace the body into a pure kernel
    # ------------------------------------------------------------------
    inputs: list[tuple[str, int]] = [("iter", iter_w)]
    for name in read_arrays:
        bank = banks[name]
        inputs.append((f"ro_{name}", bank.size * bank.width))
    for name in invariants:
        inputs.append((f"inv_{name}", INT_W))

    store_sites = list(analysis.stores)

    trace_defs: dict[str, CExpr] = {}

    def _resolve_trace(expr: CExpr) -> CExpr:
        return fold_expr(substitute_expr(expr, trace_defs, {}))

    def build(input_sigs: list[Sig]) -> dict[str, Sig]:
        cursor = 0
        iter_sig = input_sigs[cursor].resize(INT_W)
        iter_sig = Sig(iter_sig.expr, signed=True)
        cursor += 1
        bank_elems: dict[str, list[Sig]] = {}
        for name in read_arrays:
            bank = banks[name]
            bus = input_sigs[cursor]
            cursor += 1
            bank_elems[name] = [
                bus.bits((j + 1) * bank.width - 1, j * bank.width).as_signed()
                for j in range(bank.size)
            ]
        env: dict[str, Sig] = {stmt.var: iter_sig}
        for name in invariants:
            env[name] = input_sigs[cursor].as_signed()
            cursor += 1

        def c32(sig: Sig) -> Sig:
            return sig.resize(INT_W)

        def eval_expr(expr: CExpr) -> Sig:
            expr = fold_expr(expr)
            if isinstance(expr, NumExpr):
                return lit(expr.value, INT_W)
            if isinstance(expr, VarExpr):
                if expr.name not in env:
                    raise HlsError(f"pipelined loop: unbound {expr.name!r}")
                return c32(env[expr.name])
            if isinstance(expr, IndexExpr):
                bank = banks[expr.array]
                const = const_value(expr.index)
                if const is not None:
                    return c32(bank_elems[expr.array][const % bank.size])
                aff = _affine(_resolve_trace(expr.index), stmt.var)
                if aff is not None and aff[0] != 0:
                    # Affine index: only ``trip`` elements are reachable, so
                    # an iteration-keyed select replaces the full decode.
                    a, b = aff
                    taps = [
                        bank_elems[expr.array][(a * (start + k) + b) % bank.size]
                        for k in range(trip)
                    ]
                    sel_w = max(1, (trip - 1).bit_length())
                    rel = iter_sig - start if start else iter_sig
                    return c32(sig_select(rel.resize(sel_w).as_unsigned(), taps))
                idx = eval_expr(expr.index)
                sel_w = max(1, (bank.size - 1).bit_length())
                return c32(sig_select(idx.bits(sel_w - 1, 0),
                                      bank_elems[expr.array]))
            if isinstance(expr, UnExpr):
                operand = eval_expr(expr.operand)
                if expr.op == "-":
                    return c32(-operand)
                if expr.op == "~":
                    return c32(~operand)
                if expr.op == "!":
                    return c32(Sig(ops.zext(operand.eq(0).expr, INT_W), False))
                raise HlsError(f"unsupported unary {expr.op!r}")
            if isinstance(expr, CondExpr):
                return c32(sig_mux(_bool(expr.cond), eval_expr(expr.if_true),
                                   eval_expr(expr.if_false)))
            if isinstance(expr, BinExpr):
                op = expr.op
                if op in ("<<", ">>"):
                    amount = const_value(expr.right)
                    if amount is None:
                        raise HlsError("pipelined loop: shifts must be constant")
                    value = eval_expr(expr.left)
                    return c32(value << amount) if op == "<<" else c32(value >> amount)
                left, right = eval_expr(expr.left), eval_expr(expr.right)
                if op == "+":
                    return c32(left + right)
                if op == "-":
                    return c32(left - right)
                if op == "*":
                    return c32(left * right)
                if op == "&":
                    return c32(left & right)
                if op == "|":
                    return c32(left | right)
                if op == "^":
                    return c32(left ^ right)
                if op in ("<", "<=", ">", ">="):
                    compare = {"<": left < right, "<=": left <= right,
                               ">": left > right, ">=": left >= right}[op]
                    return Sig(ops.zext(compare.expr, INT_W), False)
                if op in ("==", "!="):
                    compare = left.eq(right) if op == "==" else left.ne(right)
                    return Sig(ops.zext(compare.expr, INT_W), False)
                raise HlsError(f"unsupported operator {op!r} in pipelined loop")
            raise HlsError(f"cannot trace {type(expr).__name__}")

        def _bool(expr: CExpr) -> Sig:
            value = eval_expr(expr)
            if value.width == 1:
                return value
            return value.ne(0)

        outputs: dict[str, Sig] = {}
        site = 0
        iter_rel_w = max(1, (trip - 1).bit_length())
        for body_stmt in stmts:
            if isinstance(body_stmt, DeclStmt):
                if body_stmt.init is not None:
                    env[body_stmt.name] = eval_expr(body_stmt.init)
                    if not _contains_load(body_stmt.init):
                        trace_defs[body_stmt.name] = _resolve_trace(body_stmt.init)
                else:
                    env[body_stmt.name] = lit(0, INT_W)
            elif isinstance(body_stmt, AssignStmt):
                env[body_stmt.name] = eval_expr(body_stmt.value)
                if not _contains_load(body_stmt.value):
                    trace_defs[body_stmt.name] = _resolve_trace(body_stmt.value)
                else:
                    trace_defs.pop(body_stmt.name, None)
            elif isinstance(body_stmt, StoreStmt):
                bank = banks[body_stmt.array]
                val = eval_expr(body_stmt.value).resize(bank.width)
                aff = _affine(_resolve_trace(body_stmt.index), stmt.var)
                if aff is not None and aff[0] != 0:
                    # Affine store: export the *relative iteration* as the
                    # index; the parent decodes it with trip comparators
                    # over the reachable elements only.
                    rel = iter_sig - start if start else iter_sig
                    outputs[f"st{site}_idx"] = rel.resize(iter_rel_w).as_unsigned()
                else:
                    sel_w = max(1, (bank.size - 1).bit_length())
                    idx = eval_expr(body_stmt.index)
                    outputs[f"st{site}_idx"] = Sig(
                        ops.bits(idx.expr, sel_w - 1, 0), False
                    )
                outputs[f"st{site}_val"] = val
                site += 1
        if not outputs:
            raise HlsError("pipelined loop has no stores (dead loop)")
        return outputs

    # Two-pass staging: measure the critical path, then pick the stage count
    # that meets the clock target.
    probe = pipeline_kernel(f"pipe_probe_{compiler._pipe_count}",
                            inputs, build, 1, compiler.tech)
    budget = compiler._budget()
    stages = max(1, math.ceil(probe.critical_path_ns / budget))
    result = pipeline_kernel(
        f"pipe{compiler._pipe_count}_{compiler.fn.name}", inputs, build,
        stages, compiler.tech,
    )
    compiler._pipe_count += 1
    depth = result.latency
    total = trip + depth

    # ------------------------------------------------------------------
    # FSM integration
    # ------------------------------------------------------------------
    if compiler._cycle_in_use():
        compiler._close(_Transition("goto", compiler._state_index() + 1))

    cnt_w = max(1, total.bit_length())
    counter = compiler.module.reg(f"pipe_cnt{compiler._pipe_count}", cnt_w)
    state_idx = compiler._state_index()

    # Instance hookup.
    conns: dict = {"ce": ops.const(1, 1)}
    conns["iter"] = ops.trunc(
        ops.add(ops.zext(Ref(counter), INT_W), ops.const(start, INT_W)), iter_w
    )
    for name in read_arrays:
        bank = banks[name]
        elements = [Ref(compiler._vars[bank.element(j)][0])
                    for j in range(bank.size)]
        conns[f"ro_{name}"] = ops.cat(*reversed(elements))
    for name in invariants:
        conns[f"inv_{name}"] = ops.sext(Ref(compiler._vars[name][0]), INT_W)
    out_wires: dict[str, Ref] = {}
    for oname in result.module.outputs:
        port = next(s for s in result.module.outputs if s.name == oname.name)
        wire = compiler.module.wire(f"pw{compiler._pipe_count}_{port.name}",
                                    port.width)
        conns[port.name] = wire
        out_wires[port.name] = Ref(wire)
    compiler.module.instance(result.module, f"u_pipe{compiler._pipe_count}",
                             **conns)

    # Bank write-back, gated by the drain window.
    wen = ops.band(
        ops.ge(Ref(counter), ops.const(depth, cnt_w), signed=False),
        ops.lt(Ref(counter), ops.const(total, cnt_w), signed=False),
    )
    iter_rel_w = max(1, (trip - 1).bit_length())
    for site, (store, store_index) in enumerate(
        zip(store_sites, analysis.store_indices)
    ):
        bank = banks[store.array]
        idx = out_wires[f"st{site}_idx"]
        val = out_wires[f"st{site}_val"]
        aff = _affine(store_index, stmt.var)

        def write_elem(j: int, hit: Expr) -> None:
            elem = bank.element(j)
            previous = compiler._chain.get(elem)
            if previous is None:
                previous = Ref(compiler._vars[elem][0])
            compiler._chain[elem] = ops.mux(
                ops.band(wen, hit),
                ops.resize(val, bank.width, signed=True),
                ops.resize(previous, bank.width, signed=True),
            )

        if aff is not None and aff[0] != 0:
            a, b = aff
            for k in range(trip):
                j = (a * (start + k) + b) % bank.size
                write_elem(j, ops.eq(idx, ops.const(k, iter_rel_w)))
        else:
            sel_w = max(1, (bank.size - 1).bit_length())
            for j in range(bank.size):
                write_elem(j, ops.eq(idx, ops.const(j, sel_w)))
    # The induction variable lands on its exit value.
    compiler._declare_var(stmt.var, INT_W)
    compiler._chain[stmt.var] = ops.const(bound, INT_W)

    done = ops.eq(Ref(counter), ops.const(total - 1, cnt_w))
    compiler._close(_Transition("wait", cond=done,
                                target=compiler._state_index() + 1))

    # Counter: counts while the FSM parks in the loop state.
    def finalize(idx: int = state_idx, cnt=counter, width: int = cnt_w) -> None:
        in_state = compiler._in_state(idx)
        compiler.module.set_next(
            cnt,
            ops.mux(in_state, ops.trunc(ops.add(Ref(cnt), 1), width),
                    ops.const(0, width)),
        )

    compiler._pipe_finalizers.append(finalize)

    compiler.loop_info[f"pipe_{stmt.var}_{state_idx}"] = {
        "kind": "pipelined", "trip": trip, "depth": depth, "stages": stages,
        "cycles": total,
    }
