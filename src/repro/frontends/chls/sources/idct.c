/* 8x8 inverse DCT, Chen-Wang algorithm, adapted from the ISO/IEC
 * 13818-4:2004 conformance decoder (mpeg2decode).  As in the paper,
 * rounding in the column pass is an iclip() function rather than a
 * pre-filled lookup array, and pointer arithmetic is rewritten as
 * explicit base+offset indexing for HLS consumption.
 *
 * The block is transformed in place: 12-bit coefficients in, 9-bit
 * samples out.
 */

static int iclip(int x)
{
  return x < -256 ? -256 : (x > 255 ? 255 : x);
}

static void idctrow(short blk[64], int off)
{
  int x0, x1, x2, x3, x4, x5, x6, x7, x8;

  x1 = blk[off + 4] << 11;
  x2 = blk[off + 6];
  x3 = blk[off + 2];
  x4 = blk[off + 1];
  x5 = blk[off + 7];
  x6 = blk[off + 5];
  x7 = blk[off + 3];
  x0 = (blk[off + 0] << 11) + 128;

  /* first stage */
  x8 = 565 * (x4 + x5);
  x4 = x8 + 2276 * x4;
  x5 = x8 - 3406 * x5;
  x8 = 2408 * (x6 + x7);
  x6 = x8 - 799 * x6;
  x7 = x8 - 4017 * x7;

  /* second stage */
  x8 = x0 + x1;
  x0 = x0 - x1;
  x1 = 1108 * (x3 + x2);
  x2 = x1 - 3784 * x2;
  x3 = x1 + 1568 * x3;
  x1 = x4 + x6;
  x4 = x4 - x6;
  x6 = x5 + x7;
  x5 = x5 - x7;

  /* third stage */
  x7 = x8 + x3;
  x8 = x8 - x3;
  x3 = x0 + x2;
  x0 = x0 - x2;
  x2 = (181 * (x4 + x5) + 128) >> 8;
  x4 = (181 * (x4 - x5) + 128) >> 8;

  /* fourth stage */
  blk[off + 0] = (short)((x7 + x1) >> 8);
  blk[off + 1] = (short)((x3 + x2) >> 8);
  blk[off + 2] = (short)((x0 + x4) >> 8);
  blk[off + 3] = (short)((x8 + x6) >> 8);
  blk[off + 4] = (short)((x8 - x6) >> 8);
  blk[off + 5] = (short)((x0 - x4) >> 8);
  blk[off + 6] = (short)((x3 - x2) >> 8);
  blk[off + 7] = (short)((x7 - x1) >> 8);
}

static void idctcol(short blk[64], int off)
{
  int x0, x1, x2, x3, x4, x5, x6, x7, x8;

  x1 = blk[off + 32] << 8;
  x2 = blk[off + 48];
  x3 = blk[off + 16];
  x4 = blk[off + 8];
  x5 = blk[off + 56];
  x6 = blk[off + 40];
  x7 = blk[off + 24];
  x0 = (blk[off + 0] << 8) + 8192;

  /* first stage */
  x8 = 565 * (x4 + x5) + 4;
  x4 = (x8 + 2276 * x4) >> 3;
  x5 = (x8 - 3406 * x5) >> 3;
  x8 = 2408 * (x6 + x7) + 4;
  x6 = (x8 - 799 * x6) >> 3;
  x7 = (x8 - 4017 * x7) >> 3;

  /* second stage */
  x8 = x0 + x1;
  x0 = x0 - x1;
  x1 = 1108 * (x3 + x2) + 4;
  x2 = (x1 - 3784 * x2) >> 3;
  x3 = (x1 + 1568 * x3) >> 3;
  x1 = x4 + x6;
  x4 = x4 - x6;
  x6 = x5 + x7;
  x5 = x5 - x7;

  /* third stage */
  x7 = x8 + x3;
  x8 = x8 - x3;
  x3 = x0 + x2;
  x0 = x0 - x2;
  x2 = (181 * (x4 + x5) + 128) >> 8;
  x4 = (181 * (x4 - x5) + 128) >> 8;

  /* fourth stage */
  blk[off + 0]  = (short)iclip((x7 + x1) >> 14);
  blk[off + 8]  = (short)iclip((x3 + x2) >> 14);
  blk[off + 16] = (short)iclip((x0 + x4) >> 14);
  blk[off + 24] = (short)iclip((x8 + x6) >> 14);
  blk[off + 32] = (short)iclip((x8 - x6) >> 14);
  blk[off + 40] = (short)iclip((x0 - x4) >> 14);
  blk[off + 48] = (short)iclip((x3 - x2) >> 14);
  blk[off + 56] = (short)iclip((x7 - x1) >> 14);
}

void idct(short blk[64])
{
  int i;
  for (i = 0; i < 8; i++)
    idctrow(blk, 8 * i);
  for (i = 0; i < 8; i++)
    idctcol(blk, i);
}
