"""The mini-C HLS compiler: scheduling and FSM/datapath generation.

The compiler lowers one flattened (inlined) C function into a synchronous
FSM + datapath module:

* **scalars** become registers (C ``int`` = 32 bits, ``short`` = 16);
* **arrays** become BRAM-style memories with a fixed number of read/write
  ports (the Bambu ``channels-type`` model), or — when partitioned — banks
  of individual registers;
* **straight-line code** is list-scheduled into clock cycles with
  operation chaining bounded by the target clock period and by the memory
  ports available per cycle;
* **loops** stay rolled (one shared body datapath, the area-saving default
  of C HLS), are fully unrolled under ``#pragma HLS UNROLL``, or are
  software-pipelined under ``#pragma HLS PIPELINE`` (one iteration per
  cycle through an automatically staged datapath);
* **non-inlined call boundaries** (the Vivado push-button behaviour the
  paper describes) cost handshake cycles between FSM regions;
* ``#pragma HLS INTERFACE axis`` makes the tool generate the row-by-row
  AXI-Stream staging FSM around the top array.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from ...core.errors import HlsError, ScheduleError
from ...rtl import Module, ops
from ...rtl.ir import Expr, MemRead, Ref, Signal
from ...rtl.module import Memory
from ...synth.cost import node_cost
from ...synth.tech import ULTRASCALE_PLUS, Tech
from ..flow.pipeline import pipeline_kernel
from ..hc.dsl import Sig
from .cast import (
    AssignStmt,
    BinExpr,
    Block,
    CondExpr,
    DeclStmt,
    Expr as CExpr,
    ExprStmt,
    ForStmt,
    Function,
    IfStmt,
    IndexExpr,
    NumExpr,
    ReturnStmt,
    StoreStmt,
    UnExpr,
    VarExpr,
)
from .transform import RegionMarker, const_value, fold_expr, substitute_expr, unroll_loop

__all__ = ["HlsOptions", "HlsResult", "Compiler"]

INT_W, SHORT_W = 32, 16


@dataclass(frozen=True)
class HlsOptions:
    """Tool configuration (command-line options and pragma enables)."""

    clock_period_ns: float = 10.0
    mem_read_ports: int = 1
    mem_write_ports: int = 1
    call_overhead: int = 2          # cycles per non-inlined call boundary
    enable_pipeline_pragmas: bool = True
    enable_unroll_pragmas: bool = True
    chaining: bool = True           # pack dependent ops into one cycle
    partition_arrays: frozenset = frozenset()
    axis_arrays: frozenset = frozenset()  # arrays with INTERFACE axis
    bram_policy: str = "LSS"        # reporting knob (Bambu memory-allocation)


@dataclass
class HlsResult:
    """Compilation artifacts and schedule statistics."""

    module: Module
    n_states: int
    loop_info: dict[str, dict] = field(default_factory=dict)
    regions: int = 0
    schedule_retries: int = 0


@dataclass
class _Transition:
    kind: str                   # "goto" | "branch" | "wait" | "expr" | "done"
    target: int | None = None
    cond: Expr | None = None
    target_false: int | None = None
    next_expr: Expr | None = None  # for kind == "expr": the next state value


@dataclass
class _State:
    index: int
    var_writes: dict[str, Expr] = field(default_factory=dict)
    gate: Expr | None = None    # extra enable on every write in this state
    transition: _Transition = field(default_factory=lambda: _Transition("goto"))


class _BankArray:
    """A completely partitioned array: one register per element."""

    def __init__(self, name: str, size: int, width: int) -> None:
        self.name = name
        self.size = size
        self.width = width

    def element(self, index: int) -> str:
        return f"{self.name}__{index}"


class _MemArray:
    """A memory-mapped array with physical ports."""

    def __init__(self, name: str, memory: Memory, width: int) -> None:
        self.name = name
        self.memory = memory
        self.width = width


class Compiler:
    """Compiles one flattened function into an FSM + datapath module."""

    def __init__(self, function: Function, options: HlsOptions,
                 tech: Tech = ULTRASCALE_PLUS, name: str | None = None) -> None:
        self.fn = function
        self.options = options
        self.tech = tech
        self.module = Module(name or f"hls_{function.name}")
        self._vars: dict[str, tuple[Signal, int]] = {}  # name -> (reg, width)
        self._arrays: dict[str, _BankArray | _MemArray] = {}
        self._states: list[_State] = []
        self._chain: dict[str, Expr] = {}
        # Arrival-time memo keyed by id(expr).  Each entry retains the expr
        # itself: a dangling id from a freed node could be reused by a later
        # allocation and alias a stale arrival, making schedules depend on
        # heap history.
        self._arrival: dict[int, tuple[Expr, float]] = {}
        self._loads_this_cycle = 0
        self._stores_this_cycle: list[tuple[_MemArray, Expr, Expr]] = []
        self._cur_gate: Expr | None = None
        self._read_ports: dict[str, list[list[tuple[int, Expr]]]] = {}
        self._read_wires: dict[tuple[str, int], Signal] = {}
        self._write_recs: dict[str, list[list[tuple[int, Expr | None, Expr, Expr]]]] = {}
        self._pipe_count = 0
        self._pipe_finalizers: list = []
        self._port_refs: dict[tuple[str, int], Expr] = {}
        self.loop_info: dict[str, dict] = {}
        self.regions = 0
        self.schedule_retries = 0  # state-close retries (obs: chls.schedule.iterations)

    # ==================================================================
    # state machinery
    # ==================================================================
    def _state_index(self) -> int:
        return len(self._states)

    def _close(self, transition: _Transition) -> _State:
        """Finish the cycle under construction as a new state."""
        state = _State(index=len(self._states), gate=self._cur_gate,
                       transition=transition)
        for var, expr in self._chain.items():
            reg, width = self._vars[var]
            state.var_writes[var] = ops.resize(expr, width, signed=True)
        self._states.append(state)
        for mem_arr, addr, data in self._stores_this_cycle:
            self._record_store(state.index, mem_arr, addr, data)
        self._chain.clear()
        self._stores_this_cycle = []
        self._loads_this_cycle = 0
        self._cur_gate = None
        return state

    def _cycle_in_use(self) -> bool:
        return bool(self._chain) or bool(self._stores_this_cycle) \
            or self._loads_this_cycle > 0

    # -- variables -------------------------------------------------------
    def _declare_var(self, name: str, width: int) -> Signal:
        if name in self._vars:
            return self._vars[name][0]
        reg = self.module.reg(f"v_{name}", width)
        self._vars[name] = (reg, width)
        return reg

    def _read_var(self, name: str) -> Expr:
        if name in self._chain:
            return ops.sext(self._chain[name], INT_W)
        if name not in self._vars:
            raise HlsError(f"read of undeclared variable {name!r}")
        reg, _width = self._vars[name]
        return ops.sext(Ref(reg), INT_W)

    def _write_var(self, name: str, value: Expr) -> None:
        if name not in self._vars:
            raise HlsError(f"write to undeclared variable {name!r}")
        self._chain[name] = value

    # -- timing ------------------------------------------------------------
    def _node_arrival(self, expr: Expr) -> float:
        key = id(expr)
        cached = self._arrival.get(key)
        if cached is not None:
            return cached[1]
        from ...rtl.ir import BinOp, Cat, Const, Ext, Mux, Slice, UnOp

        if isinstance(expr, Const):
            value = 0.0
        elif isinstance(expr, Ref):
            value = 0.1
        elif isinstance(expr, MemRead):
            value = self._node_arrival(expr.addr) + node_cost(expr, self.tech).delay
        else:
            children: tuple[Expr, ...] = ()
            if isinstance(expr, BinOp):
                children = (expr.a, expr.b)
            elif isinstance(expr, (UnOp, Slice, Ext)):
                children = (expr.a,)
            elif isinstance(expr, Mux):
                children = (expr.sel, expr.if_true, expr.if_false)
            elif isinstance(expr, Cat):
                children = expr.parts
            base = max((self._node_arrival(c) for c in children), default=0.0)
            value = base + node_cost(expr, self.tech, allow_dsp=False).delay
        self._arrival[key] = (expr, value)
        return value

    def _budget(self) -> float:
        return self.options.clock_period_ns * 0.85  # leave margin for control

    # ==================================================================
    # arrays and memory ports
    # ==================================================================
    def declare_array(self, name: str, size: int, width: int) -> None:
        if name in self._arrays:
            raise HlsError(f"array {name!r} declared twice")
        if name in self.options.partition_arrays:
            bank = _BankArray(name, size, width)
            for j in range(size):
                self._declare_var(bank.element(j), width)
            self._arrays[name] = bank
        else:
            memory = self.module.memory(
                f"mem_{name}", size, width,
                max_read_ports=self.options.mem_read_ports,
                max_write_ports=self.options.mem_write_ports,
            )
            self._arrays[name] = _MemArray(name, memory, width)

    def _load(self, name: str, index: CExpr) -> Expr:
        array = self._arrays.get(name)
        if array is None:
            raise HlsError(f"load from unknown array {name!r}")
        if isinstance(array, _BankArray):
            const = const_value(index)
            if const is not None:
                return self._read_var(array.element(const % array.size))
            idx = self._eval(index)
            elements = [self._read_var(array.element(j)) for j in range(array.size)]
            sel_width = max(1, (array.size - 1).bit_length())
            return ops.sext(
                ops.select(ops.bits(idx, sel_width - 1, 0), elements, signed=True),
                INT_W,
            )
        # Memory-mapped: allocate a read port slot for this cycle.
        if self._loads_this_cycle >= self.options.mem_read_ports * len(
            [a for a in self._arrays.values() if isinstance(a, _MemArray)]
        ):
            pass  # per-array limit enforced below
        idx = self._eval(index)
        slot = self._alloc_read_port(array, idx)
        wire = self._read_wires[(array.name, slot)]
        ref = self._port_refs.setdefault((array.name, slot), Ref(wire))
        self._arrival[id(ref)] = (ref, self._node_arrival(idx) + 0.8)
        return ops.sext(ref, INT_W)

    def _alloc_read_port(self, array: _MemArray, addr: Expr) -> int:
        ports = self._read_ports.setdefault(
            array.name, [[] for _ in range(self.options.mem_read_ports)]
        )
        state_idx = self._state_index()
        for slot, records in enumerate(ports):
            used = [rec for rec in records if rec[0] == state_idx]
            if not used:
                records.append((state_idx, addr))
                if (array.name, slot) not in self._read_wires:
                    wire = self.module.wire(f"rd_{array.name}_{slot}", array.width)
                    self._read_wires[(array.name, slot)] = wire
                return slot
        raise ScheduleError("out of read ports this cycle",
                            phase="chls.schedule",
                            array=array.name,
                            read_ports=self.options.mem_read_ports)

    def _store(self, name: str, index: CExpr, value: Expr) -> None:
        array = self._arrays.get(name)
        if array is None:
            raise HlsError(f"store to unknown array {name!r}")
        sized = ops.resize(value, array.width, signed=True)
        if isinstance(array, _BankArray):
            const = const_value(index)
            if const is not None:
                self._write_var(array.element(const % array.size), sized)
                return
            idx = self._eval(index)
            sel_width = max(1, (array.size - 1).bit_length())
            idx_bits = ops.bits(idx, sel_width - 1, 0)
            for j in range(array.size):
                old = ops.resize(self._read_var(array.element(j)), array.width,
                                 signed=True)
                self._write_var(
                    array.element(j),
                    ops.mux(ops.eq(idx_bits, ops.const(j, sel_width)), sized, old),
                )
            return
        # Memory-mapped store: one write port slot per cycle.
        used = len([s for s in self._stores_this_cycle if s[0] is array])
        if used >= self.options.mem_write_ports:
            raise ScheduleError("out of write ports this cycle",
                                phase="chls.schedule", array=array.name,
                                write_ports=self.options.mem_write_ports)
        idx = self._eval(index)
        self._stores_this_cycle.append((array, idx, sized))

    def _record_store(self, state_idx: int, array: _MemArray, addr: Expr,
                      data: Expr) -> None:
        recs = self._write_recs.setdefault(
            array.name, [[] for _ in range(self.options.mem_write_ports)]
        )
        for slot, records in enumerate(recs):
            if not any(rec[0] == state_idx for rec in records):
                records.append((state_idx, self._states[state_idx].gate, addr, data))
                return
        raise ScheduleError("out of write ports at finalize",
                            phase="chls.schedule", array=array.name,
                            write_ports=self.options.mem_write_ports)

    # ==================================================================
    # expression evaluation (C semantics, 32-bit)
    # ==================================================================
    def _eval(self, expr: CExpr) -> Expr:
        expr = fold_expr(expr)
        if isinstance(expr, NumExpr):
            return ops.const(expr.value, INT_W)
        if isinstance(expr, VarExpr):
            return self._read_var(expr.name)
        if isinstance(expr, IndexExpr):
            return self._load(expr.array, expr.index)
        if isinstance(expr, UnExpr):
            operand = self._eval(expr.operand)
            if expr.op == "-":
                return ops.neg(operand)
            if expr.op == "~":
                return ops.bnot(operand)
            if expr.op == "!":
                return ops.zext(ops.eq(operand, ops.const(0, INT_W)), INT_W)
            raise HlsError(f"unsupported unary {expr.op!r}")
        if isinstance(expr, BinExpr):
            return self._eval_bin(expr)
        if isinstance(expr, CondExpr):
            cond = self._bool(expr.cond)
            return ops.mux(cond, self._eval(expr.if_true), self._eval(expr.if_false))
        raise HlsError(f"cannot evaluate {type(expr).__name__} (calls must be inlined)")

    def _eval_bin(self, expr: BinExpr) -> Expr:
        op = expr.op
        if op in ("&&", "||"):
            left = self._bool(expr.left)
            right = self._bool(expr.right)
            combined = ops.band(left, right) if op == "&&" else ops.bor(left, right)
            return ops.zext(combined, INT_W)
        left = self._eval(expr.left)
        if op in ("<<", ">>"):
            shift = const_value(expr.right)
            if shift is None:
                amount = self._eval(expr.right)
                return (ops.shl(left, ops.bits(amount, 5, 0)) if op == "<<"
                        else ops.ashr(left, ops.bits(amount, 5, 0)))
            return ops.trunc(ops.shl(left, shift), INT_W) if op == "<<" \
                else ops.ashr(left, shift)
        right = self._eval(expr.right)
        if op == "+":
            return ops.add(left, right)
        if op == "-":
            return ops.sub(left, right)
        if op == "*":
            return ops.trunc(ops.mul(left, right, signed=True), INT_W)
        if op == "&":
            return ops.band(left, right)
        if op == "|":
            return ops.bor(left, right)
        if op == "^":
            return ops.bxor(left, right)
        if op in ("<", "<=", ">", ">="):
            compare = {"<": ops.lt, "<=": ops.le, ">": ops.gt, ">=": ops.ge}[op]
            return ops.zext(compare(left, right, signed=True), INT_W)
        if op in ("==", "!="):
            compare = ops.eq if op == "==" else ops.ne
            return ops.zext(compare(left, right), INT_W)
        if op in ("/", "%"):
            raise HlsError("division requires constant operands in this subset")
        raise HlsError(f"unsupported operator {op!r}")

    def _bool(self, expr: CExpr) -> Expr:
        value = self._eval(expr)
        if value.width == 1:
            return value
        return ops.ne(value, ops.const(0, INT_W))

    # ==================================================================
    # statement scheduling
    # ==================================================================
    def compile_block(self, block: Block) -> None:
        for stmt in block.statements:
            self.compile_stmt(stmt)

    def compile_stmt(self, stmt) -> None:
        if isinstance(stmt, Block):
            self.compile_block(stmt)
        elif isinstance(stmt, DeclStmt):
            if stmt.array_size is not None:
                self.declare_array(stmt.name, stmt.array_size,
                                   SHORT_W if stmt.ctype == "short" else INT_W)
            else:
                self._declare_var(stmt.name,
                                  SHORT_W if stmt.ctype == "short" else INT_W)
                if stmt.init is not None:
                    self._schedule_assign(stmt.name, stmt.init)
        elif isinstance(stmt, AssignStmt):
            self._schedule_assign(stmt.name, stmt.value)
        elif isinstance(stmt, StoreStmt):
            self._schedule_store(stmt)
        elif isinstance(stmt, IfStmt):
            self._compile_if(stmt)
        elif isinstance(stmt, ForStmt):
            self._compile_for(stmt)
        elif isinstance(stmt, RegionMarker):
            self._compile_region(stmt)
        elif isinstance(stmt, ReturnStmt):
            if stmt.value is not None:
                self._schedule_assign("__retval", stmt.value)
        elif isinstance(stmt, ExprStmt):
            raise HlsError("expression statements should have been inlined away")
        else:
            raise HlsError(f"cannot compile {type(stmt).__name__}")

    def _schedule_assign(self, name: str, value: CExpr) -> None:
        if name == "__retval" and name not in self._vars:
            self._declare_var(name, INT_W)
        self._try_in_cycle(lambda: self._write_var(name, self._eval(value)))

    def _schedule_store(self, stmt: StoreStmt) -> None:
        self._try_in_cycle(lambda: self._store(stmt.array, stmt.index,
                                               self._eval(stmt.value)))

    def _try_in_cycle(self, action) -> None:
        """Run an action; on resource/timing overflow, close and retry."""
        checkpoint = self._snapshot()
        try:
            action()
            if self.options.chaining:
                over = any(
                    self._node_arrival(expr) > self._budget()
                    for expr in self._chain.values()
                )
            else:
                over = len(self._chain) > 1 or bool(self._stores_this_cycle)
            if over and checkpoint["had_content"]:
                raise ScheduleError("over budget", phase="chls.schedule")
            if over and not checkpoint["had_content"]:
                # A single operation that exceeds the budget on its own:
                # accept it (the clock stretches, as real tools report).
                pass
        except ScheduleError:
            self.schedule_retries += 1
            self._restore(checkpoint)
            self._close(_Transition("goto", self._state_index() + 1))
            try:
                action()
            except ScheduleError as exc:
                raise HlsError(
                    "a single statement needs more memory ports than the "
                    f"configuration provides ({exc})",
                    phase="chls.schedule",
                ) from exc

    def _snapshot(self) -> dict:
        return {
            "chain": dict(self._chain),
            "stores": list(self._stores_this_cycle),
            "ports": {name: [list(s) for s in slots]
                      for name, slots in self._read_ports.items()},
            "had_content": self._cycle_in_use(),
        }

    def _restore(self, checkpoint: dict) -> None:
        self._chain = checkpoint["chain"]
        self._stores_this_cycle = checkpoint["stores"]
        self._read_ports = checkpoint["ports"]

    # -- control flow ------------------------------------------------------
    def _compile_if(self, stmt: IfStmt) -> None:
        cond = self._bool(stmt.cond)
        branch_state = self._close(_Transition("branch", cond=cond))
        then_first = self._state_index()
        self.compile_block(stmt.then_body)
        then_tail = self._close(_Transition("goto"))
        if stmt.else_body is not None:
            else_first = self._state_index()
            self.compile_block(stmt.else_body)
            else_tail = self._close(_Transition("goto"))
        else:
            else_first = None
            else_tail = None
        join = self._state_index()
        branch_state.transition.target = then_first
        branch_state.transition.target_false = (
            else_first if else_first is not None else join
        )
        then_tail.transition.target = join
        if else_tail is not None:
            else_tail.transition.target = join

    def _compile_region(self, marker: RegionMarker) -> None:
        """Non-inlined call boundary: flush and burn handshake cycles."""
        self.regions += 1
        for _ in range(self.options.call_overhead):
            self._close(_Transition("goto", self._state_index() + 1))

    def _compile_for(self, stmt: ForStmt) -> None:
        directives = {p.directive for p in stmt.pragmas}
        if "UNROLL" in directives and self.options.enable_unroll_pragmas:
            self.compile_block(unroll_loop(stmt))
            return
        if "PIPELINE" in directives and self.options.enable_pipeline_pragmas:
            self._compile_pipelined_for(stmt)
            return
        self._compile_rolled_for(stmt)

    def _compile_rolled_for(self, stmt: ForStmt) -> None:
        start = const_value(stmt.start)
        bound = const_value(stmt.bound)
        self._declare_var(stmt.var, INT_W)
        self._schedule_assign(stmt.var, stmt.start)
        self._close(_Transition("goto", self._state_index() + 1))
        body_first = self._state_index()
        known_nonempty = start is not None and bound is not None and start < bound
        if not known_nonempty:
            # General form: a head state testing the condition.
            cond = self._bool(BinExpr("<", VarExpr(stmt.var), stmt.bound))
            head = self._close(_Transition("branch", cond=cond))
            body_first = self._state_index()
        self.compile_block(stmt.body)
        # Final cycle: increment once and loop back while the next value
        # satisfies the bound (evaluating the increment a second time would
        # double-step through the chained value).
        tail_cond: list[Expr] = []

        def tail_action() -> None:
            tail_cond.clear()
            inc = self._eval(BinExpr("+", VarExpr(stmt.var), NumExpr(stmt.step)))
            bound_expr = self._eval(stmt.bound)
            tail_cond.append(ops.lt(inc, bound_expr, signed=True))
            self._write_var(stmt.var, inc)

        self._try_in_cycle(tail_action)
        tail = self._close(_Transition("branch", cond=tail_cond[0], target=body_first))
        exit_idx = self._state_index()
        tail.transition.target_false = exit_idx
        if not known_nonempty:
            head.transition.target = body_first
            head.transition.target_false = exit_idx
        body_states = exit_idx - body_first
        trip = (bound - start + stmt.step - 1) // stmt.step if known_nonempty else None
        self.loop_info[f"for_{stmt.var}_{body_first}"] = {
            "kind": "rolled", "body_states": body_states, "trip": trip,
        }

    # -- pipelined loops -----------------------------------------------------
    def _compile_pipelined_for(self, stmt: ForStmt) -> None:
        from .pipeloop import compile_pipelined_loop

        compile_pipelined_loop(self, stmt)

    # ==================================================================
    # finalize
    # ==================================================================
    def finalize_entry_exit(self, loop_forever: bool) -> None:
        """Close the trailing cycle; loop back to state 0 or halt."""
        if loop_forever:
            self._close(_Transition("goto", 0))
        else:
            final = self._close(_Transition("done"))
            final.transition.target = final.index

    def build_fsm(self) -> None:
        """Generate the state register, write-back muxes, and port muxes."""
        n = len(self._states)
        width = max(1, (n - 1).bit_length())
        state_reg = self.module.reg("fsm_state", width)
        self._state_sig = state_reg

        def in_state(idx: int) -> Expr:
            return ops.eq(Ref(state_reg), ops.const(idx, width))

        self._in_state = in_state

        # Next-state logic: a log-depth select over per-state next values
        # (the case statement a real HLS FSM emits).
        per_state_next: list[Expr] = []
        for state in self._states:
            tr = state.transition
            if tr.kind == "goto":
                here: Expr = ops.const(
                    min(tr.target if tr.target is not None else state.index + 1,
                        n - 1), width)
            elif tr.kind == "branch":
                t = ops.const(min(tr.target or 0, n - 1), width)
                f = ops.const(min(tr.target_false if tr.target_false is not None
                                  else state.index + 1, n - 1), width)
                here = ops.mux(tr.cond, t, f)
            elif tr.kind == "wait":
                t = ops.const(min(tr.target or 0, n - 1), width)
                here = ops.mux(tr.cond, t, ops.const(state.index, width))
            elif tr.kind == "expr":
                here = ops.resize(tr.next_expr, width, signed=False)
            else:  # done
                here = ops.const(state.index, width)
            per_state_next.append(here)
        self.module.set_next(
            state_reg, ops.select(Ref(state_reg), per_state_next, signed=False)
        )

        # Variable write-back muxes.
        writers: dict[str, list[tuple[int, Expr | None, Expr]]] = {}
        for state in self._states:
            for var, expr in state.var_writes.items():
                writers.setdefault(var, []).append((state.index, state.gate, expr))
        for var, (reg, width_v) in self._vars.items():
            records = writers.get(var)
            if not records:
                self.module.set_next(reg, Ref(reg))
                continue
            value: Expr = Ref(reg)
            enable: Expr | None = None
            for idx, gate, expr in records:
                hit: Expr = self._in_state(idx)
                if gate is not None:
                    hit = ops.band(hit, gate)
                value = ops.mux(hit, expr, value)
                enable = hit if enable is None else ops.bor(enable, hit)
            self.module.set_next(reg, value, en=enable)

        # Memory read port muxes: per-state address select.
        for (name, slot), wire in self._read_wires.items():
            array = self._arrays[name]
            assert isinstance(array, _MemArray)
            by_state: dict[int, Expr] = {idx: a
                                         for idx, a in self._read_ports[name][slot]}
            table = [by_state.get(i, ops.const(0, INT_W)) for i in range(n)]
            addr = ops.select(Ref(state_reg), table, signed=False)
            self.module.assign(wire, MemRead(array.memory, addr))

        # Memory write port muxes.
        for name, slots in self._write_recs.items():
            array = self._arrays[name]
            assert isinstance(array, _MemArray)
            for slot_records in slots:
                if not slot_records:
                    continue
                en: Expr | None = None
                addr: Expr = ops.const(0, INT_W)
                data: Expr = ops.const(0, array.width)
                for idx, gate, a, d in slot_records:
                    hit: Expr = self._in_state(idx)
                    if gate is not None:
                        hit = ops.band(hit, gate)
                    en = hit if en is None else ops.bor(en, hit)
                    addr = ops.mux(hit, a, addr)
                    data = ops.mux(hit, d, data)
                self.module.mem_write(array.memory, en, addr, data)

        for finalize in self._pipe_finalizers:
            finalize()

    def states_matching(self, indices: list[int]) -> Expr:
        """OR of state hits (used by the interface generator)."""
        expr: Expr | None = None
        for idx in indices:
            hit = self._in_state(idx)
            expr = hit if expr is None else ops.bor(expr, hit)
        return expr if expr is not None else ops.const(0, 1)
