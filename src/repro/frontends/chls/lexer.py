"""Tokenizer for the mini-C HLS input language.

The accepted language is the subset of C99 the paper's benchmark uses:
``int``/``short``/``void``, one-dimensional arrays, functions, ``for``
loops, ``if``/``else``, the usual integer operators, and ``#pragma HLS``
directives (which become first-class tokens so the parser can attach them
to the following statement or enclosing function).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ...core.errors import HlsError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = {
    "int", "short", "void", "if", "else", "for", "while", "return",
    "static", "const",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<pragma>\#\s*pragma[^\n]*)
  | (?P<number>0[xX][0-9a-fA-F]+|\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><<=|>>=|<<|>>|<=|>=|==|!=|&&|\|\||\+\+|--|\+=|-=|\*=|[-+*/%<>=!&|^~?:;,(){}\[\]])
    """,
    re.VERBOSE | re.DOTALL,
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source line (for error messages)."""

    kind: str   # "number" | "ident" | "keyword" | "op" | "pragma" | "eof"
    text: str
    line: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; raises :class:`HlsError` on illegal input."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            snippet = source[pos:pos + 20].splitlines()[0]
            raise HlsError(f"line {line}: cannot tokenize {snippet!r}")
        text = match.group(0)
        kind = match.lastgroup or ""
        if kind == "ws" or kind == "comment":
            line += text.count("\n")
            pos = match.end()
            continue
        if kind == "ident" and text in KEYWORDS:
            kind = "keyword"
        if kind == "pragma":
            text = text.strip()
        tokens.append(Token(kind, text, line))
        line += text.count("\n")
        pos = match.end()
    tokens.append(Token("eof", "", line))
    return tokens
