"""AST transforms: function inlining, constant folding, loop unrolling.

The HLS midend works on a single flattened top function: calls are inlined
(with renamed locals), constants are folded so array indices like
``8*i + 3`` become literals after unrolling, and ``UNROLL`` pragmas (or
full unrolling requested by a tool) replicate loop bodies with the
induction variable substituted.
"""

from __future__ import annotations

from ...core.errors import HlsError
from .cast import (
    AssignStmt,
    BinExpr,
    Block,
    CallExpr,
    CondExpr,
    DeclStmt,
    Expr,
    ExprStmt,
    ForStmt,
    Function,
    IfStmt,
    IndexExpr,
    NumExpr,
    Program,
    ReturnStmt,
    Stmt,
    StoreStmt,
    UnExpr,
    VarExpr,
)

__all__ = [
    "fold_expr",
    "const_value",
    "substitute_expr",
    "inline_program",
    "unroll_loop",
    "count_statements",
    "RegionMarker",
]


class RegionMarker(Stmt):
    """Marks a non-inlined call boundary (costs handshake cycles)."""

    def __init__(self, label: str, kind: str) -> None:
        self.label = label
        self.kind = kind  # "enter" | "leave"

    def __repr__(self) -> str:
        return f"RegionMarker({self.label}, {self.kind})"


# ----------------------------------------------------------------------
# constant folding
# ----------------------------------------------------------------------

_FOLD_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: _c_div(a, b),
    "%": lambda a, b: a - _c_div(a, b) * b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "&&": lambda a, b: int(bool(a) and bool(b)),
    "||": lambda a, b: int(bool(a) or bool(b)),
}


def _c_div(a: int, b: int) -> int:
    """C99 division truncates toward zero."""
    if b == 0:
        raise HlsError("constant division by zero")
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


def fold_expr(expr: Expr) -> Expr:
    """Fold constant subexpressions."""
    if isinstance(expr, BinExpr):
        left = fold_expr(expr.left)
        right = fold_expr(expr.right)
        if isinstance(left, NumExpr) and isinstance(right, NumExpr):
            return NumExpr(_FOLD_OPS[expr.op](left.value, right.value))
        return BinExpr(expr.op, left, right)
    if isinstance(expr, UnExpr):
        operand = fold_expr(expr.operand)
        if isinstance(operand, NumExpr):
            if expr.op == "-":
                return NumExpr(-operand.value)
            if expr.op == "~":
                return NumExpr(~operand.value)
            if expr.op == "!":
                return NumExpr(int(not operand.value))
        return UnExpr(expr.op, operand)
    if isinstance(expr, CondExpr):
        cond = fold_expr(expr.cond)
        if isinstance(cond, NumExpr):
            return fold_expr(expr.if_true if cond.value else expr.if_false)
        return CondExpr(cond, fold_expr(expr.if_true), fold_expr(expr.if_false))
    if isinstance(expr, IndexExpr):
        return IndexExpr(expr.array, fold_expr(expr.index))
    if isinstance(expr, CallExpr):
        return CallExpr(expr.callee, tuple(fold_expr(a) for a in expr.args))
    return expr


def const_value(expr: Expr) -> int | None:
    """The integer value of a constant expression, or None."""
    folded = fold_expr(expr)
    return folded.value if isinstance(folded, NumExpr) else None


# ----------------------------------------------------------------------
# substitution (variables -> expressions / renames)
# ----------------------------------------------------------------------

def substitute_expr(expr: Expr, env: dict[str, Expr], arrays: dict[str, str]) -> Expr:
    """Replace variable reads and array names per the environments."""
    if isinstance(expr, VarExpr):
        return env.get(expr.name, expr)
    if isinstance(expr, IndexExpr):
        return IndexExpr(arrays.get(expr.array, expr.array),
                         substitute_expr(expr.index, env, arrays))
    if isinstance(expr, BinExpr):
        return BinExpr(expr.op, substitute_expr(expr.left, env, arrays),
                       substitute_expr(expr.right, env, arrays))
    if isinstance(expr, UnExpr):
        return UnExpr(expr.op, substitute_expr(expr.operand, env, arrays))
    if isinstance(expr, CondExpr):
        return CondExpr(substitute_expr(expr.cond, env, arrays),
                        substitute_expr(expr.if_true, env, arrays),
                        substitute_expr(expr.if_false, env, arrays))
    if isinstance(expr, CallExpr):
        return CallExpr(expr.callee,
                        tuple(substitute_expr(a, env, arrays) for a in expr.args))
    return expr


def _substitute_stmt(stmt, env: dict[str, Expr], arrays: dict[str, str],
                     rename: dict[str, str]):
    """Deep-copy a statement with variable renames and substitutions."""
    if isinstance(stmt, Block):
        return Block([_substitute_stmt(s, env, arrays, rename)
                      for s in stmt.statements])
    if isinstance(stmt, DeclStmt):
        new_name = rename.get(stmt.name, stmt.name)
        init = None if stmt.init is None else substitute_expr(stmt.init, env, arrays)
        return DeclStmt(stmt.ctype, new_name, stmt.array_size, init)
    if isinstance(stmt, AssignStmt):
        return AssignStmt(rename.get(stmt.name, stmt.name),
                          substitute_expr(stmt.value, env, arrays))
    if isinstance(stmt, StoreStmt):
        return StoreStmt(arrays.get(stmt.array, stmt.array),
                         substitute_expr(stmt.index, env, arrays),
                         substitute_expr(stmt.value, env, arrays))
    if isinstance(stmt, IfStmt):
        return IfStmt(substitute_expr(stmt.cond, env, arrays),
                      _substitute_stmt(stmt.then_body, env, arrays, rename),
                      None if stmt.else_body is None
                      else _substitute_stmt(stmt.else_body, env, arrays, rename))
    if isinstance(stmt, ForStmt):
        return ForStmt(rename.get(stmt.var, stmt.var),
                       substitute_expr(stmt.start, env, arrays),
                       substitute_expr(stmt.bound, env, arrays),
                       stmt.step,
                       _substitute_stmt(stmt.body, env, arrays, rename),
                       list(stmt.pragmas))
    if isinstance(stmt, ReturnStmt):
        return ReturnStmt(None if stmt.value is None
                          else substitute_expr(stmt.value, env, arrays))
    if isinstance(stmt, ExprStmt):
        return ExprStmt(substitute_expr(stmt.expr, env, arrays))
    if isinstance(stmt, RegionMarker):
        return stmt
    raise HlsError(f"cannot substitute in {type(stmt).__name__}")


# ----------------------------------------------------------------------
# inlining
# ----------------------------------------------------------------------

def count_statements(block: Block) -> int:
    total = 0
    for stmt in block.statements:
        total += 1
        if isinstance(stmt, Block):
            total += count_statements(stmt) - 1
        elif isinstance(stmt, IfStmt):
            total += count_statements(stmt.then_body)
            if stmt.else_body is not None:
                total += count_statements(stmt.else_body)
        elif isinstance(stmt, ForStmt):
            total += count_statements(stmt.body)
    return total


class _Inliner:
    """Flattens a program into one top function."""

    def __init__(self, program: Program, inline_all: bool,
                 auto_inline_max_stmts: int) -> None:
        self._program = program
        self._inline_all = inline_all
        self._auto_max = auto_inline_max_stmts
        self._counter = 0
        self._temp_counter = 0
        self.regions = 0  # non-inlined call boundaries encountered

    def _fresh(self, base: str) -> str:
        self._counter += 1
        return f"{base}__{self._counter}"

    def _fresh_temp(self) -> str:
        self._temp_counter += 1
        return f"__ret{self._temp_counter}"

    def inline_function(self, name: str) -> Function:
        top = self._program.functions.get(name)
        if top is None:
            raise HlsError(f"no function named {name!r}")
        body = self._inline_block(top.body, depth=0)
        return Function(top.return_type, top.name, list(top.params), body,
                        list(top.pragmas))

    # ------------------------------------------------------------------
    def _inline_block(self, block: Block, depth: int) -> Block:
        out = Block()
        for stmt in block.statements:
            out.statements.extend(self._inline_stmt(stmt, depth))
        return out

    def _inline_stmt(self, stmt, depth: int) -> list:
        if depth > 32:
            raise HlsError("inlining recursion too deep (recursive calls?)")
        if isinstance(stmt, Block):
            return [self._inline_block(stmt, depth)]
        if isinstance(stmt, ExprStmt) and isinstance(stmt.expr, CallExpr):
            return self._inline_call(stmt.expr, None, depth)
        if isinstance(stmt, (AssignStmt, StoreStmt, DeclStmt)):
            value = stmt.init if isinstance(stmt, DeclStmt) else stmt.value
            prelude, new_value = self._extract_calls(value, depth)
            if isinstance(stmt, AssignStmt):
                return prelude + [AssignStmt(stmt.name, new_value)]
            if isinstance(stmt, StoreStmt):
                pre_idx, new_index = self._extract_calls(stmt.index, depth)
                return prelude + pre_idx + [StoreStmt(stmt.array, new_index, new_value)]
            return prelude + [DeclStmt(stmt.ctype, stmt.name, stmt.array_size, new_value)]
        if isinstance(stmt, IfStmt):
            prelude, cond = self._extract_calls(stmt.cond, depth)
            new = IfStmt(cond, self._inline_block(stmt.then_body, depth),
                         None if stmt.else_body is None
                         else self._inline_block(stmt.else_body, depth))
            return prelude + [new]
        if isinstance(stmt, ForStmt):
            new = ForStmt(stmt.var, stmt.start, stmt.bound, stmt.step,
                          self._inline_block(stmt.body, depth), list(stmt.pragmas))
            return [new]
        return [stmt]

    def _extract_calls(self, expr, depth: int):
        """Pull calls out of an expression, inlining each into a temp."""
        if expr is None:
            return [], None
        prelude: list = []

        def walk(node):
            if isinstance(node, CallExpr):
                args = tuple(walk(a) for a in node.args)
                temp = self._fresh_temp()
                prelude.extend(
                    self._inline_call(CallExpr(node.callee, args), temp, depth)
                )
                return VarExpr(temp)
            if isinstance(node, BinExpr):
                return BinExpr(node.op, walk(node.left), walk(node.right))
            if isinstance(node, UnExpr):
                return UnExpr(node.op, walk(node.operand))
            if isinstance(node, CondExpr):
                return CondExpr(walk(node.cond), walk(node.if_true), walk(node.if_false))
            if isinstance(node, IndexExpr):
                return IndexExpr(node.array, walk(node.index))
            return node

        return prelude, walk(expr)

    def _inline_call(self, call: CallExpr, result_var: str | None, depth: int) -> list:
        callee = self._program.functions.get(call.callee)
        if callee is None:
            raise HlsError(f"call to unknown function {call.callee!r}")
        if len(call.args) != len(callee.params):
            raise HlsError(f"{call.callee}: expected {len(callee.params)} args")

        wants_inline = (
            self._inline_all
            or any(p.directive == "INLINE" for p in callee.pragmas)
            or count_statements(callee.body) <= self._auto_max
        )

        env: dict[str, Expr] = {}
        arrays: dict[str, str] = {}
        rename: dict[str, str] = {}
        prelude: list = []
        for param, arg in zip(callee.params, call.args):
            if param.is_array:
                if not isinstance(arg, VarExpr):
                    raise HlsError(f"{call.callee}: array argument must be an array name")
                arrays[param.name] = arg.name
            else:
                # Bind scalars by value into fresh temps (C semantics).
                temp = self._fresh(param.name)
                prelude.append(DeclStmt(param.ctype, temp, None, arg))
                env[param.name] = VarExpr(temp)

        # Rename the callee's locals.
        for local in _local_names(callee.body):
            rename[local] = self._fresh(local)
            env.setdefault(local, VarExpr(rename[local]))

        body = _substitute_stmt(callee.body, env, arrays, rename)
        body = self._strip_return(body, result_var, callee)
        body = self._inline_block(body, depth + 1)

        statements: list = list(prelude)
        if result_var is not None:
            statements.append(DeclStmt("int", result_var, None, None))
        if not wants_inline:
            self.regions += 1
            statements.append(RegionMarker(call.callee, "enter"))
            statements.extend(body.statements)
            statements.append(RegionMarker(call.callee, "leave"))
        else:
            statements.extend(body.statements)
        return statements

    def _strip_return(self, body: Block, result_var: str | None,
                      callee: Function) -> Block:
        statements = list(body.statements)
        if statements and isinstance(statements[-1], ReturnStmt):
            ret = statements.pop()
            if ret.value is not None:
                if result_var is None:
                    pass  # value discarded
                else:
                    statements.append(AssignStmt(result_var, ret.value))
        elif callee.return_type != "void" and result_var is not None:
            raise HlsError(f"{callee.name}: missing return statement")
        for stmt in statements:
            if isinstance(stmt, ReturnStmt):
                raise HlsError(
                    f"{callee.name}: only a single trailing return is supported"
                )
        return Block(statements)


def _local_names(block: Block) -> list[str]:
    names: list[str] = []

    def walk(b: Block) -> None:
        for stmt in b.statements:
            if isinstance(stmt, DeclStmt):
                names.append(stmt.name)
            elif isinstance(stmt, Block):
                walk(stmt)
            elif isinstance(stmt, IfStmt):
                walk(stmt.then_body)
                if stmt.else_body is not None:
                    walk(stmt.else_body)
            elif isinstance(stmt, ForStmt):
                names.append(stmt.var)
                walk(stmt.body)

    walk(block)
    return names


def inline_program(program: Program, top: str, inline_all: bool = True,
                   auto_inline_max_stmts: int = 4) -> tuple[Function, int]:
    """Flatten ``top`` and everything it calls; returns (function, regions)."""
    inliner = _Inliner(program, inline_all, auto_inline_max_stmts)
    function = inliner.inline_function(top)
    return function, inliner.regions


# ----------------------------------------------------------------------
# unrolling
# ----------------------------------------------------------------------

def unroll_loop(loop: ForStmt) -> Block:
    """Fully unroll a constant-trip-count loop."""
    start = const_value(loop.start)
    bound = const_value(loop.bound)
    if start is None or bound is None:
        raise HlsError("cannot unroll a loop with non-constant bounds")
    out = Block()
    value = start
    while value < bound:
        env = {loop.var: NumExpr(value)}
        body = _substitute_stmt(loop.body, env, {}, {})
        out.statements.append(_fold_block(body))
        value += loop.step
    return out


def _fold_block(block: Block) -> Block:
    out = Block()
    for stmt in block.statements:
        if isinstance(stmt, Block):
            out.statements.append(_fold_block(stmt))
        elif isinstance(stmt, AssignStmt):
            out.statements.append(AssignStmt(stmt.name, fold_expr(stmt.value)))
        elif isinstance(stmt, StoreStmt):
            out.statements.append(StoreStmt(stmt.array, fold_expr(stmt.index),
                                            fold_expr(stmt.value)))
        elif isinstance(stmt, DeclStmt):
            init = None if stmt.init is None else fold_expr(stmt.init)
            out.statements.append(DeclStmt(stmt.ctype, stmt.name, stmt.array_size, init))
        elif isinstance(stmt, IfStmt):
            folded = fold_expr(stmt.cond)
            if isinstance(folded, NumExpr):
                if folded.value:
                    out.statements.append(_fold_block(stmt.then_body))
                elif stmt.else_body is not None:
                    out.statements.append(_fold_block(stmt.else_body))
            else:
                out.statements.append(
                    IfStmt(folded, _fold_block(stmt.then_body),
                           None if stmt.else_body is None
                           else _fold_block(stmt.else_body))
                )
        elif isinstance(stmt, ForStmt):
            out.statements.append(
                ForStmt(stmt.var, fold_expr(stmt.start), fold_expr(stmt.bound),
                        stmt.step, _fold_block(stmt.body), list(stmt.pragmas))
            )
        else:
            out.statements.append(stmt)
    return out
