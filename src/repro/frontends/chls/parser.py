"""Recursive-descent parser for the mini-C HLS language."""

from __future__ import annotations

import re

from ...core.errors import HlsError
from .cast import (
    AssignStmt,
    BinExpr,
    Block,
    CallExpr,
    CondExpr,
    DeclStmt,
    ExprStmt,
    ForStmt,
    Function,
    IfStmt,
    IndexExpr,
    NumExpr,
    Param,
    Pragma,
    Program,
    ReturnStmt,
    StoreStmt,
    UnExpr,
    VarExpr,
)
from .lexer import Token, tokenize

__all__ = ["parse", "parse_pragma"]

_PRAGMA_RE = re.compile(r"#\s*pragma\s+HLS\s+(\w+)(.*)", re.IGNORECASE)

# binary operator precedence (C-like, low to high)
_PRECEDENCE = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]


def parse_pragma(text: str, line: int = 0) -> Pragma | None:
    """Parse a ``#pragma HLS <directive> key=value ...`` line."""
    match = _PRAGMA_RE.match(text)
    if match is None:
        return None  # non-HLS pragmas are ignored
    directive = match.group(1).upper()
    settings: dict[str, str] = {}
    for item in match.group(2).split():
        if "=" in item:
            key, value = item.split("=", 1)
            settings[key.lower()] = value
        else:
            settings[item.lower()] = "true"
    return Pragma(directive=directive, settings=settings, line=line)


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing -----------------------------------------------
    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._cur
        self._pos += 1
        return token

    def _check(self, text: str) -> bool:
        return self._cur.text == text

    def _accept(self, text: str) -> bool:
        if self._check(text):
            self._advance()
            return True
        return False

    def _expect(self, text: str) -> Token:
        if not self._check(text):
            raise HlsError(
                f"line {self._cur.line}: expected {text!r}, got {self._cur.text!r}"
            )
        return self._advance()

    def _collect_pragmas(self) -> list[Pragma]:
        pragmas = []
        while self._cur.kind == "pragma":
            token = self._advance()
            pragma = parse_pragma(token.text, token.line)
            if pragma is not None:
                pragmas.append(pragma)
        return pragmas

    # -- top level -------------------------------------------------------
    def program(self) -> Program:
        program = Program()
        while self._cur.kind != "eof":
            self._collect_pragmas()  # stray file-level pragmas are ignored
            function = self.function()
            if function.name in program.functions:
                raise HlsError(f"function {function.name!r} defined twice")
            program.functions[function.name] = function
        return program

    def function(self) -> Function:
        self._accept("static")
        if self._cur.kind != "keyword" or self._cur.text not in ("int", "short", "void"):
            raise HlsError(f"line {self._cur.line}: expected a return type")
        return_type = self._advance().text
        name = self._expect_ident()
        self._expect("(")
        params: list[Param] = []
        if not self._check(")"):
            while True:
                params.append(self.param())
                if not self._accept(","):
                    break
        self._expect(")")
        self._expect("{")
        pragmas = self._collect_pragmas()
        body = self.block_items()
        self._expect("}")
        return Function(return_type=return_type, name=name, params=params,
                        body=body, pragmas=pragmas)

    def param(self) -> Param:
        self._accept("const")
        if self._cur.text not in ("int", "short"):
            raise HlsError(f"line {self._cur.line}: unsupported parameter type")
        ctype = self._advance().text
        if self._accept("*"):
            name = self._expect_ident()
            return Param(ctype=ctype, name=name, is_array=True)
        name = self._expect_ident()
        if self._accept("["):
            size = None
            if self._cur.kind == "number":
                size = int(self._advance().text, 0)
            self._expect("]")
            return Param(ctype=ctype, name=name, is_array=True, array_size=size)
        return Param(ctype=ctype, name=name)

    def _expect_ident(self) -> str:
        if self._cur.kind != "ident":
            raise HlsError(
                f"line {self._cur.line}: expected identifier, got {self._cur.text!r}"
            )
        return self._advance().text

    # -- statements ----------------------------------------------------
    def block_items(self) -> Block:
        block = Block()
        while not self._check("}"):
            block.statements.append(self.statement())
        return block

    def statement(self) -> "Stmt":
        pragmas = self._collect_pragmas()
        stmt = self._statement_inner()
        if pragmas:
            if isinstance(stmt, ForStmt):
                stmt.pragmas.extend(pragmas)
            else:
                raise HlsError(
                    f"line {pragmas[0].line}: pragma must precede a for loop "
                    f"or open a function body"
                )
        return stmt

    def _statement_inner(self) -> "Stmt":
        if self._check("{"):
            self._advance()
            block = self.block_items()
            self._expect("}")
            return block
        if self._cur.text in ("int", "short"):
            return self.declaration()
        if self._check("if"):
            return self.if_statement()
        if self._check("for"):
            return self.for_statement()
        if self._check("return"):
            self._advance()
            value = None if self._check(";") else self.expression()
            self._expect(";")
            return ReturnStmt(value)
        return self.simple_statement()

    def declaration(self) -> "Stmt":
        ctype = self._advance().text
        block = Block()
        while True:
            name = self._expect_ident()
            if self._accept("["):
                size_token = self._advance()
                if size_token.kind != "number":
                    raise HlsError(f"line {size_token.line}: array size must be constant")
                self._expect("]")
                block.statements.append(
                    DeclStmt(ctype=ctype, name=name, array_size=int(size_token.text, 0))
                )
            else:
                init = self.expression() if self._accept("=") else None
                block.statements.append(DeclStmt(ctype=ctype, name=name, init=init))
            if not self._accept(","):
                break
        self._expect(";")
        if len(block.statements) == 1:
            return block.statements[0]
        return block

    def if_statement(self) -> IfStmt:
        self._expect("if")
        self._expect("(")
        cond = self.expression()
        self._expect(")")
        then_body = self._statement_as_block()
        else_body = None
        if self._accept("else"):
            else_body = self._statement_as_block()
        return IfStmt(cond=cond, then_body=then_body, else_body=else_body)

    def _statement_as_block(self) -> Block:
        stmt = self.statement()
        if isinstance(stmt, Block):
            return stmt
        return Block([stmt])

    def for_statement(self) -> ForStmt:
        self._expect("for")
        self._expect("(")
        # init: [int] var = expr
        if self._cur.text == "int":
            self._advance()
        var = self._expect_ident()
        self._expect("=")
        start = self.expression()
        self._expect(";")
        # condition: var < bound  (or <=)
        cond_var = self._expect_ident()
        if cond_var != var:
            raise HlsError("for-loop condition must test the induction variable")
        op = self._advance().text
        if op not in ("<", "<="):
            raise HlsError("for-loop condition must be < or <=")
        bound = self.expression()
        if op == "<=":
            bound = BinExpr("+", bound, NumExpr(1))
        self._expect(";")
        # step: var++ or var += k
        step_var = self._expect_ident()
        if step_var != var:
            raise HlsError("for-loop step must update the induction variable")
        if self._accept("++"):
            step = 1
        elif self._accept("+="):
            token = self._advance()
            if token.kind != "number":
                raise HlsError("for-loop step must be a constant")
            step = int(token.text, 0)
        else:
            raise HlsError("for-loop step must be ++ or += constant")
        self._expect(")")
        body = self._statement_as_block()
        return ForStmt(var=var, start=start, bound=bound, step=step, body=body)

    def simple_statement(self) -> "Stmt":
        # assignment / compound assignment / array store / call
        if self._cur.kind == "ident":
            name = self._cur.text
            next_token = self._tokens[self._pos + 1]
            if next_token.text == "(":
                expr = self.expression()
                self._expect(";")
                return ExprStmt(expr)
            if next_token.text == "[":
                self._advance()
                self._expect("[")
                index = self.expression()
                self._expect("]")
                op = self._advance().text
                value = self.expression()
                self._expect(";")
                target = IndexExpr(name, index)
                value = _compound(op, target, value)
                return StoreStmt(array=name, index=index, value=value)
            if next_token.text in ("=", "+=", "-=", "*=", "<<=", ">>="):
                self._advance()
                op = self._advance().text
                value = self.expression()
                self._expect(";")
                value = _compound(op, VarExpr(name), value)
                return AssignStmt(name=name, value=value)
        raise HlsError(f"line {self._cur.line}: cannot parse statement at {self._cur.text!r}")

    # -- expressions -------------------------------------------------------
    def expression(self) -> "Expr":
        return self.ternary()

    def ternary(self) -> "Expr":
        cond = self.binary(0)
        if self._accept("?"):
            if_true = self.expression()
            self._expect(":")
            if_false = self.expression()
            return CondExpr(cond, if_true, if_false)
        return cond

    def binary(self, level: int) -> "Expr":
        if level >= len(_PRECEDENCE):
            return self.unary()
        left = self.binary(level + 1)
        while self._cur.text in _PRECEDENCE[level]:
            op = self._advance().text
            right = self.binary(level + 1)
            left = BinExpr(op, left, right)
        return left

    def unary(self) -> "Expr":
        if self._cur.text in ("-", "!", "~"):
            op = self._advance().text
            return UnExpr(op, self.unary())
        if self._accept("("):
            # cast or parenthesized expression
            if self._cur.text in ("int", "short"):
                self._advance()
                self._expect(")")
                return self.unary()  # casts are no-ops at this level
            expr = self.expression()
            self._expect(")")
            return expr
        return self.primary()

    def primary(self) -> "Expr":
        token = self._cur
        if token.kind == "number":
            self._advance()
            return NumExpr(int(token.text, 0))
        if token.kind == "ident":
            name = self._advance().text
            if self._accept("("):
                args: list["Expr"] = []
                if not self._check(")"):
                    while True:
                        args.append(self.expression())
                        if not self._accept(","):
                            break
                self._expect(")")
                return CallExpr(name, tuple(args))
            if self._accept("["):
                index = self.expression()
                self._expect("]")
                return IndexExpr(name, index)
            return VarExpr(name)
        raise HlsError(f"line {token.line}: unexpected token {token.text!r}")


def _compound(op: str, target: "Expr", value: "Expr") -> "Expr":
    """Expand ``x op= v`` into ``x = x op v``."""
    if op == "=":
        return value
    return BinExpr(op[:-1], target, value)


def parse(source: str) -> Program:
    """Parse mini-C source text into a :class:`Program`."""
    return _Parser(tokenize(source)).program()
