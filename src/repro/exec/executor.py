"""The pluggable executor seam under :class:`ParallelSweepRunner`.

An :class:`Executor` takes the sweep's task list plus the shared payload
base and returns one entry per task, **in task order**:

* a worker output dict (the :func:`repro.exec.worker.run_task` shape) —
  the normal case;
* a ``{"crashed": n}`` sentinel — the task killed ``n`` workers (or let
  ``n`` leases expire) and was quarantined; the runner converts it into
  an honest ``FAILED(WorkerCrashError)`` cell;
* ``None`` — nothing ran (only possible for executors that skip work).

Executors own dispatch, supervision, and retry; the runner owns trace
stamping, the deterministic task-order merge, checkpointing, and
quarantine records.  :class:`PoolExecutor` is the in-process
``ProcessPoolExecutor`` implementation (the PR 5 supervision loop,
extracted verbatim); :class:`repro.fabric.client.FabricExecutor` is the
distributed one.  Both honor the same crash arithmetic from
:mod:`repro.resilience.supervise`, so "a worker died" means the same
thing whether the worker was a forked child or a machine across the
network.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, as_completed
from typing import Protocol, runtime_checkable

from ..core.errors import WorkerCrashError
from ..obs import events as obs_events
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..resilience.supervise import backoff_delay, default_crash_budget
from .tasks import SweepTask
from . import worker as worker_mod

__all__ = ["Executor", "PoolExecutor", "DEFAULT_MAX_TASKS_PER_CHILD",
           "POISON_ATTEMPTS"]

#: Tasks a pool worker may serve before the whole pool is recycled.
#: Design builds memoize netlists and compiled simulators per process, so
#: a long-lived worker grows monotonically; recycling bounds its footprint
#: the way ``multiprocessing.Pool(maxtasksperchild=…)`` would, but without
#: requiring a non-fork start method.
DEFAULT_MAX_TASKS_PER_CHILD = 64

#: A task that has cost this many worker crashes (pool deaths or lease
#: expiries) is given one last chance; a crash there quarantines it as a
#: poison task.
POISON_ATTEMPTS = 2


@runtime_checkable
class Executor(Protocol):
    """Dispatch a sweep's tasks somewhere; return outputs in task order."""

    #: Supervision counters the runner folds into its own stats after a
    #: run: ``worker_restarts`` (crash/expiry rounds) and ``pools``
    #: (process pools spun up; 0 for remote executors).
    stats: dict

    def run(self, tasks: list[SweepTask], base: dict,
            context: "worker_mod.WorkerContext") -> list[dict | None]:
        """Measure every task; see the module docstring for the shape.

        Raises :class:`~repro.core.errors.WorkerCrashError` when the
        crash budget is exhausted.
        """
        ...  # pragma: no cover - protocol


def _pool_context():
    """Prefer fork (cheap, library already imported); fall back otherwise."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class PoolExecutor:
    """The ``ProcessPoolExecutor``-backed executor with round supervision.

    Pools are recycled every ``jobs * max_tasks_per_child`` tasks so that
    no worker process ever serves more than ``max_tasks_per_child``
    tasks.  A broken pool (a worker died) does not abort the sweep: its
    unfinished tasks are re-dispatched in the next supervision round
    after an exponential backoff, and a task whose attempts reach
    :data:`POISON_ATTEMPTS` is probed once more in a **solo**
    single-worker pool — if that pool dies too, the task alone is the
    culprit and it is reported as a ``{"crashed": n}`` sentinel instead
    of aborting the sweep.  Crashes are bounded by
    ``max_worker_crashes`` (default ``2 * tasks + 8``); past that the
    sweep fails honestly with
    :class:`~repro.core.errors.WorkerCrashError`.
    """

    def __init__(self, jobs: int = 2,
                 max_tasks_per_child: int | None = DEFAULT_MAX_TASKS_PER_CHILD,
                 crash_backoff_s: float = 0.05,
                 max_worker_crashes: int | None = None) -> None:
        self.jobs = max(1, int(jobs))
        self.max_tasks_per_child = (None if not max_tasks_per_child
                                    else max(1, int(max_tasks_per_child)))
        self.crash_backoff_s = max(0.0, crash_backoff_s)
        self.max_worker_crashes = max_worker_crashes
        self.stats = {"worker_restarts": 0, "pools": 0}

    # ------------------------------------------------------------------
    def run(self, tasks: list[SweepTask], base: dict,
            context: "worker_mod.WorkerContext") -> list[dict | None]:
        self._tasks = tasks
        results: list[dict | None] = [None] * len(tasks)
        attempts = [0] * len(tasks)
        pending = list(range(len(tasks)))
        crashes = 0
        budget = (self.max_worker_crashes
                  if self.max_worker_crashes is not None
                  else default_crash_budget(len(tasks)))
        while pending:
            retry: list[int] = []
            fresh = [i for i in pending if attempts[i] < POISON_ATTEMPTS]
            suspect = [i for i in pending if attempts[i] >= POISON_ATTEMPTS]
            if self.max_tasks_per_child is None:
                stride = max(1, len(fresh))
            else:
                stride = self.jobs * self.max_tasks_per_child
            for start in range(0, len(fresh), stride):
                chunk = fresh[start:start + stride]
                lost, broke = self._run_pool(chunk, self.jobs, base, context,
                                             results, attempts)
                if broke:
                    crashes += 1
                    self._note_crash(crashes, lost)
                    for i in lost:
                        attempts[i] += 1
                    retry.extend(lost)
            for i in suspect:
                # Solo probe: one task, one worker.  A crash here is
                # attributable beyond doubt — quarantine the task.
                lost, broke = self._run_pool([i], 1, base, context,
                                             results, attempts)
                if broke:
                    crashes += 1
                    self._note_crash(crashes, lost)
                    results[i] = {"crashed": attempts[i] + 1}
            pending = retry
            if crashes > budget:
                raise WorkerCrashError(
                    f"worker pool crashed {crashes} times "
                    f"(budget {budget}); aborting sweep",
                    phase="exec.supervise")
        return results

    def _run_pool(self, indices: list[int], workers: int, base: dict,
                  context, results: list,
                  attempts: list[int]) -> tuple[list[int], bool]:
        """Run one pool over ``indices``; ``(lost_indices, pool_broke)``.

        Successful task outputs land in ``results``; tasks the pool lost
        (their worker died before the future resolved, so the executor
        can only report ``BrokenProcessPool`` for every unfinished
        future) come back for the supervision loop to re-dispatch.
        """
        pool = ProcessPoolExecutor(
            max_workers=max(1, min(workers, len(indices))),
            mp_context=_pool_context(),
            initializer=worker_mod.init_worker,
            initargs=(context,),
        )
        self.stats["pools"] += 1
        broke = False
        remaining = set(indices)
        futures: dict = {}
        try:
            try:
                for i in indices:
                    payload = dict(base, task=self._tasks[i].to_record(),
                                   attempt=attempts[i])
                    futures[pool.submit(worker_mod.run_task, payload)] = i
            except BrokenExecutor:
                broke = True
            for future in as_completed(futures):
                i = futures[future]
                try:
                    results[i] = future.result()
                except BrokenExecutor:
                    broke = True
                    continue
                remaining.discard(i)
        except BaseException:
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        finally:
            pool.shutdown(wait=True)
        return sorted(remaining), broke

    def _note_crash(self, crashes: int, lost: list[int]) -> None:
        self.stats["worker_restarts"] += 1
        obs_metrics.inc("exec.worker_restarts")
        obs_trace.event("exec.worker_crash", crashes=crashes,
                        lost=len(lost))
        obs_events.emit("worker.restart", crashes=crashes, lost=len(lost),
                        tasks=[worker_mod.task_id(self._tasks[i])
                               for i in lost])
        delay = backoff_delay(crashes, self.crash_backoff_s)
        if delay:
            time.sleep(delay)
