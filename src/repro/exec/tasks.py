"""Picklable task specs addressing individual sweep design points.

A :class:`SweepTask` never carries a built design (netlists hold cyclic,
process-local structure): it carries the *coordinates* of a point in a
deterministic enumeration that every process can rebuild identically —
Table II pairs come from :data:`repro.eval.experiments.PAIRS`, Figure 1
points from :func:`repro.eval.experiments.fig1_design_lists` with the
same sizes.  ``(kind, key, index)`` therefore names the same design
point in the parent and in every worker.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SweepTask", "table2_tasks", "fig1_tasks"]


@dataclass(frozen=True)
class SweepTask:
    """Coordinates of one design point in a sweep enumeration."""

    kind: str            # "table2" | "fig1"
    key: str             # PAIRS key, or the Fig. 1 tool name
    index: int           # 0=initial / 1=optimized, or the point index
    sizes: tuple = ()    # sorted (name, value) pairs for fig1_design_lists
    ctx: tuple = ()      # (trace_id, parent_span_id) when tracing, else ()


def table2_tasks(tools: list[str] | None = None) -> list[SweepTask]:
    """One task per Table II design point, in generation order."""
    from ..eval.experiments import PAIRS

    keys = list(tools) if tools else list(PAIRS)
    if "Verilog/Vivado" not in keys:
        keys = ["Verilog/Vivado"] + keys
    return [SweepTask("table2", key, index)
            for key in keys for index in (0, 1)]


def fig1_tasks(design_lists: list[tuple[str, list]],
               sizes: dict) -> list[SweepTask]:
    """One task per Figure 1 design point, in generation order.

    ``design_lists`` is the parent's already-built
    :func:`~repro.eval.experiments.fig1_design_lists` structure (only
    point *counts* are read here); ``sizes`` are the keyword arguments
    that produced it, shipped so workers can rebuild the identical
    enumeration.
    """
    packed = tuple(sorted(sizes.items()))
    return [SweepTask("fig1", tool, index, packed)
            for tool, designs in design_lists
            for index in range(len(designs))]
