"""Picklable task specs addressing individual sweep design points.

A :class:`SweepTask` never carries a built design (netlists hold cyclic,
process-local structure): it carries the *coordinates* of a point in a
deterministic enumeration that every process can rebuild identically —
Table II pairs come from :data:`repro.eval.experiments.PAIRS`, Figure 1
points from :func:`repro.eval.experiments.fig1_design_lists` with the
same sizes.  ``(kind, key, index)`` therefore names the same design
point in the parent and in every worker.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ReproError

__all__ = ["SweepTask", "TaskSchemaError", "TASK_SCHEMA_VERSION",
           "table2_tasks", "fig1_tasks"]

#: Version tag stamped on every serialized task.  Bump when the wire
#: layout changes; readers reject anything they don't understand instead
#: of guessing.
TASK_SCHEMA_VERSION = 1


class TaskSchemaError(ReproError):
    """A serialized task carries a schema this build cannot interpret."""


@dataclass(frozen=True)
class SweepTask:
    """Coordinates of one design point in a sweep enumeration."""

    kind: str            # "table2" | "fig1"
    key: str             # PAIRS key, or the Fig. 1 tool name
    index: int           # 0=initial / 1=optimized, or the point index
    sizes: tuple = ()    # sorted (name, value) pairs for fig1_design_lists
    ctx: tuple = ()      # (trace_id, parent_span_id) when tracing, else ()

    def to_record(self) -> dict:
        """The versioned JSON wire form (pool payloads and fabric leases).

        Tasks cross process and machine boundaries as plain JSON — never
        as pickles — so a lease body served over HTTP and a payload
        handed to a forked pool worker are the same bytes.
        """
        return {
            "schema": TASK_SCHEMA_VERSION,
            "kind": self.kind, "key": self.key, "index": self.index,
            "sizes": [list(pair) for pair in self.sizes],
            "ctx": list(self.ctx),
        }

    @classmethod
    def from_record(cls, record: dict) -> "SweepTask":
        """Rebuild a task from its wire form; reject unknown schemas."""
        schema = record.get("schema") if isinstance(record, dict) else None
        if schema != TASK_SCHEMA_VERSION:
            raise TaskSchemaError(
                f"unknown task schema {schema!r} "
                f"(this build speaks {TASK_SCHEMA_VERSION})",
                phase="exec.tasks")
        return cls(
            kind=str(record["kind"]), key=str(record["key"]),
            index=int(record["index"]),
            sizes=tuple((str(name), value)
                        for name, value in record.get("sizes") or ()),
            ctx=tuple(record.get("ctx") or ()),
        )


def table2_tasks(tools: list[str] | None = None) -> list[SweepTask]:
    """One task per Table II design point, in generation order."""
    from ..eval.experiments import PAIRS

    keys = list(tools) if tools else list(PAIRS)
    if "Verilog/Vivado" not in keys:
        keys = ["Verilog/Vivado"] + keys
    return [SweepTask("table2", key, index)
            for key in keys for index in (0, 1)]


def fig1_tasks(design_lists: list[tuple[str, list]],
               sizes: dict) -> list[SweepTask]:
    """One task per Figure 1 design point, in generation order.

    ``design_lists`` is the parent's already-built
    :func:`~repro.eval.experiments.fig1_design_lists` structure (only
    point *counts* are read here); ``sizes`` are the keyword arguments
    that produced it, shipped so workers can rebuild the identical
    enumeration.
    """
    packed = tuple(sorted(sizes.items()))
    return [SweepTask("fig1", tool, index, packed)
            for tool, designs in design_lists
            for index in range(len(designs))]
