"""Sharded sweep execution: a process-pool front-end over ``SweepRunner``.

:class:`ParallelSweepRunner` splits a sweep into two phases:

1. **prefetch** — the task list is dispatched to a
   ``ProcessPoolExecutor``; each worker builds and measures its design
   point under the sweep's normal :class:`~repro.resilience.runner`
   policy (budgets, retries, degraded final attempt, fault injection)
   and ships back a checkpoint-schema record plus its obs buffers.
   Worker outputs are merged **in task order**, not completion order, so
   traces, metrics, and cache stats are deterministic.
2. **consume** — the unchanged serial generators
   (:func:`~repro.eval.experiments.generate_table2` /
   :func:`~repro.eval.experiments.generate_fig1`) run as usual, but
   every ``measure`` call is satisfied from the prefetched records
   instead of re-simulating.  Because records round-trip measurements
   exactly (the same JSON float guarantee the resume path relies on),
   rendered stdout is byte-identical to a serial run.

Checkpointing, resume, stats, and the deterministic
``REPRO_ABORT_AFTER`` interrupt all live in the consume phase via the
inherited :meth:`SweepRunner.commit` bookkeeping, so an interrupted
parallel sweep leaves the same checkpoint prefix a serial one would,
and a resumed parallel sweep skips re-measuring checkpointed designs
(workers still *build* them, in parallel, to learn their names).

**Worker supervision.**  A worker process dying (SIGKILL, segfault, OOM
kill — or a :class:`~repro.chaos.ChaosPolicy` drill) breaks the whole
pool: every unfinished future raises ``BrokenProcessPool`` and the
executor cannot attribute the crash to a task.  The prefetch loop
therefore supervises in rounds: tasks lost to a broken pool are
re-dispatched (fresh pool, exponential backoff, ``exec.worker_restarts``
counted), and a task whose attempts reach :data:`POISON_ATTEMPTS` is
probed once more in a **solo** single-worker pool — if that pool dies
too, the task alone is the culprit and it is quarantined as a
``FAILED(WorkerCrashError)`` cell instead of aborting the sweep.
Quarantined records use the normal checkpoint schema and the merge stays
in task order, so stdout remains byte-identical to a serial run for
every surviving point and resume semantics are unchanged.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, as_completed
from dataclasses import dataclass, replace

from .. import chaos as chaos_mod
from ..cache import ArtifactCache
from ..core.errors import WorkerCrashError
from ..obs import events as obs_events
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..resilience.checkpoint import SCHEMA_VERSION
from ..resilience.errors import failure_record
from ..resilience.runner import DesignResult, SweepRunner, result_from_record
from ..resilience.supervise import backoff_delay, default_crash_budget
from .tasks import SweepTask
from . import worker as worker_mod

__all__ = ["ParallelSweepRunner", "PrebuiltPoint", "DEFAULT_MAX_TASKS_PER_CHILD",
           "POISON_ATTEMPTS"]

#: Tasks a pool worker may serve before the whole pool is recycled.
#: Design builds memoize netlists and compiled simulators per process, so
#: a long-lived worker grows monotonically; recycling bounds its footprint
#: the way ``multiprocessing.Pool(maxtasksperchild=…)`` would, but without
#: requiring a non-fork start method.
DEFAULT_MAX_TASKS_PER_CHILD = 64

#: A task that has killed this many pool workers is given one solo-pool
#: probe; a crash there quarantines it as a poison task.
POISON_ATTEMPTS = 2


@dataclass
class PrebuiltPoint:
    """A deferred Fig. 1 point resolved by a worker (no parent rebuild)."""

    name: str | None
    config: str | None
    result: DesignResult | None
    build_error: dict | None = None


def _pool_context():
    """Prefer fork (cheap, library already imported); fall back otherwise."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class ParallelSweepRunner(SweepRunner):
    """A :class:`SweepRunner` that prefetches results across processes."""

    def __init__(self, tasks: list[SweepTask] | tuple = (), jobs: int = 2,
                 cache: ArtifactCache | None = None,
                 max_tasks_per_child: int | None = DEFAULT_MAX_TASKS_PER_CHILD,
                 crash_backoff_s: float = 0.05,
                 max_worker_crashes: int | None = None,
                 **kwargs) -> None:
        super().__init__(**kwargs)
        self.tasks = list(tasks)
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.max_tasks_per_child = (None if not max_tasks_per_child
                                    else max(1, int(max_tasks_per_child)))
        self.crash_backoff_s = max(0.0, crash_backoff_s)
        self.max_worker_crashes = max_worker_crashes
        self.pools_used = 0
        self.stats.update({"worker_restarts": 0, "poisoned": 0})
        self._prefetched: dict[str, dict] = {}
        self._deferred: dict[tuple[str, str], dict] = {}
        self._prefetch_done = False

    # ------------------------------------------------------------------
    def prefetch(self) -> int:
        """Measure every task in the pool; returns the prefetched count.

        Pools are recycled every ``jobs * max_tasks_per_child`` tasks so
        that no worker process ever serves more than
        ``max_tasks_per_child`` tasks: long-running sweeps (and the
        evaluation service's background jobs) keep worker memory bounded
        instead of accumulating per-process design memos forever.  Merge
        order stays the task order, so recycling never perturbs output.

        A broken pool (a worker died) does not abort the sweep: its
        unfinished tasks are re-dispatched in the next supervision round
        after an exponential backoff, and a task that keeps killing
        workers is quarantined (see the module docstring).  Crashes are
        bounded by ``max_worker_crashes`` (default ``2 * tasks + 8``);
        past that the sweep fails honestly with
        :class:`~repro.core.errors.WorkerCrashError`.
        """
        if self._prefetch_done:
            return len(self._prefetched)
        self._prefetch_done = True
        if not self.tasks or self.jobs <= 1:
            return 0
        trace_on = obs_trace.enabled()
        if trace_on and not obs_trace.TRACER.trace_id:
            obs_trace.new_trace()
        with obs_trace.span("exec.prefetch", tasks=len(self.tasks),
                            jobs=self.jobs) as prefetch_span:
            graft = getattr(prefetch_span, "span_id", None)
            if trace_on:
                # Stamp every task with this sweep's trace context so
                # worker spans adopt the trace id; their subtrees graft
                # under this span at merge time.
                ctx = obs_trace.current_context()
                self.tasks = [replace(task, ctx=(ctx.trace_id, ctx.span_id))
                              for task in self.tasks]
            skip = (frozenset(self.checkpoint.names())
                    if self.checkpoint else ())
            base = {"config": self.config, "inject": self.inject_failures,
                    "trace": trace_on, "skip": skip}
            cache_dir = self.cache.root if self.cache is not None else None
            initargs = (cache_dir, trace_on, chaos_mod.active())
            results: list[dict | None] = [None] * len(self.tasks)
            attempts = [0] * len(self.tasks)
            pending = list(range(len(self.tasks)))
            crashes = 0
            budget = (self.max_worker_crashes
                      if self.max_worker_crashes is not None
                      else default_crash_budget(len(self.tasks)))
            while pending:
                retry: list[int] = []
                fresh = [i for i in pending if attempts[i] < POISON_ATTEMPTS]
                suspect = [i for i in pending
                           if attempts[i] >= POISON_ATTEMPTS]
                if self.max_tasks_per_child is None:
                    stride = max(1, len(fresh))
                else:
                    stride = self.jobs * self.max_tasks_per_child
                for start in range(0, len(fresh), stride):
                    chunk = fresh[start:start + stride]
                    lost, broke = self._run_pool(chunk, self.jobs, base,
                                                 initargs, results, attempts)
                    if broke:
                        crashes += 1
                        self._note_crash(crashes, lost)
                        for i in lost:
                            attempts[i] += 1
                        retry.extend(lost)
                for i in suspect:
                    # Solo probe: one task, one worker.  A crash here is
                    # attributable beyond doubt — quarantine the task.
                    lost, broke = self._run_pool([i], 1, base, initargs,
                                                 results, attempts)
                    if broke:
                        crashes += 1
                        self._note_crash(crashes, lost)
                        self._quarantine(i, attempts[i] + 1)
                pending = retry
                if crashes > budget:
                    raise WorkerCrashError(
                        f"worker pool crashed {crashes} times "
                        f"(budget {budget}); aborting sweep",
                        phase="exec.supervise")
            self._merge(results, under=graft)
            obs_trace.event("exec.prefetch_done", tasks=len(self.tasks),
                            jobs=self.jobs, pools=self.pools_used,
                            worker_restarts=self.stats["worker_restarts"],
                            poisoned=self.stats["poisoned"])
        return len(self._prefetched)

    def _run_pool(self, indices: list[int], workers: int, base: dict,
                  initargs: tuple, results: list,
                  attempts: list[int]) -> tuple[list[int], bool]:
        """Run one pool over ``indices``; ``(lost_indices, pool_broke)``.

        Successful task outputs land in ``results``; tasks the pool lost
        (their worker died before the future resolved, so the executor
        can only report ``BrokenProcessPool`` for every unfinished
        future) come back for the supervision loop to re-dispatch.
        """
        pool = ProcessPoolExecutor(
            max_workers=max(1, min(workers, len(indices))),
            mp_context=_pool_context(),
            initializer=worker_mod.init_worker,
            initargs=initargs,
        )
        self.pools_used += 1
        broke = False
        remaining = set(indices)
        futures: dict = {}
        try:
            try:
                for i in indices:
                    payload = dict(base, task=self.tasks[i],
                                   attempt=attempts[i])
                    futures[pool.submit(worker_mod.run_task, payload)] = i
            except BrokenExecutor:
                broke = True
            for future in as_completed(futures):
                i = futures[future]
                try:
                    results[i] = future.result()
                except BrokenExecutor:
                    broke = True
                    continue
                remaining.discard(i)
        except BaseException:
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        finally:
            pool.shutdown(wait=True)
        return sorted(remaining), broke

    def _note_crash(self, crashes: int, lost: list[int]) -> None:
        self.stats["worker_restarts"] += 1
        obs_metrics.inc("exec.worker_restarts")
        obs_trace.event("exec.worker_crash", crashes=crashes,
                        lost=len(lost))
        obs_events.emit("worker.restart", crashes=crashes, lost=len(lost),
                        tasks=[worker_mod.task_id(self.tasks[i])
                               for i in lost])
        delay = backoff_delay(crashes, self.crash_backoff_s)
        if delay:
            time.sleep(delay)

    def _identify(self, task: SweepTask):
        """``(label, design-or-None)`` — ``None`` for deferred points.

        Resolves through the worker module's per-process memos, which the
        parent also owns under the fork start method; deferred Fig. 1
        factories are *not* invoked (a crashing build must not take the
        parent down), their enumeration label suffices.
        """
        if task.kind == "fig1":
            item = worker_mod._fig1_item(task)
            if isinstance(item, tuple):
                return item[0], None
            return item.name, item
        design = worker_mod._table2_design(task)
        return design.name, design

    def _quarantine(self, index: int, crashes: int) -> None:
        """Record a poison task as an honest ``FAILED(…)`` design point."""
        task = self.tasks[index]
        self.stats["poisoned"] += 1
        obs_metrics.inc("exec.poisoned_tasks")
        obs_trace.event("exec.task_quarantined", kind=task.kind,
                        key=task.key, index=task.index, crashes=crashes)
        obs_events.emit("worker.poison", task=worker_mod.task_id(task),
                        crashes=crashes)
        label, design = self._identify(task)
        error = failure_record(WorkerCrashError(
            f"worker process died {crashes} times running this design "
            f"point; quarantined", design=label, phase="exec.worker",
            task=worker_mod.task_id(task)))
        if design is None:
            # Deferred Fig. 1 point: surface through the same channel a
            # worker-side build failure uses.
            self._deferred[(task.key, label)] = {
                "build_error": error, "name": None, "config": label,
                "record": None}
        else:
            self._prefetched[design.name] = {
                "schema": SCHEMA_VERSION, "design": design.name,
                "status": "failed", "measured": None, "error": error,
                "attempts": crashes, "degraded": False}

    def _merge(self, results: list[dict | None],
               under: int | None = None) -> None:
        """Fold worker outputs in task order (deterministic by design)."""
        for res in results:
            if res is None:
                continue
            if res["spans"]:
                obs_trace.TRACER.ingest(res["spans"], under=under)
            if res.get("events"):
                obs_events.EVENTS.ingest(res["events"])
            if res["metrics"]:
                obs_metrics.REGISTRY.merge_snapshot(res["metrics"])
            if self.cache is not None and res["cache"]:
                self.cache.merge_stats(res["cache"])
            if res["stats"]:
                self.stats["retries"] += res["stats"]["retries"]
                self.stats["degraded_runs"] += res["stats"]["degraded_runs"]
            if res["deferred"]:
                self._deferred[(res["key"], res["label"])] = res
            if not res["skipped"] and res["record"] and res["name"]:
                self._prefetched[res["name"]] = res["record"]

    # ------------------------------------------------------------------
    def _measure_with_retries(self, design) -> DesignResult:
        """Satisfy a measure from the prefetch map; fall back to inline."""
        record = self._prefetched.pop(design.name, None)
        if record is None:
            return super()._measure_with_retries(design)
        return result_from_record(record)

    def deferred_result(self, tool: str, config: str) -> PrebuiltPoint | None:
        """Resolve a deferred ``(config, factory)`` Fig. 1 point.

        Returns ``None`` when no worker handled this point (the caller
        builds and measures inline, exactly like a serial sweep).  A
        checkpoint record still takes precedence over a prefetched
        measurement, preserving resume semantics.
        """
        res = self._deferred.pop((tool, config), None)
        if res is None:
            return None
        if res["build_error"] is not None:
            return PrebuiltPoint(name=None, config=config, result=None,
                                 build_error=res["build_error"])
        name = res["name"]
        self._prefetched.pop(name, None)
        cached = self._from_checkpoint(name)
        if cached is not None:
            return PrebuiltPoint(name=name, config=res["config"],
                                 result=cached)
        if res["record"] is None:
            return None
        result = self.commit(result_from_record(res["record"]))
        return PrebuiltPoint(name=name, config=res["config"], result=result)
