"""Sharded sweep execution: a process-pool front-end over ``SweepRunner``.

:class:`ParallelSweepRunner` splits a sweep into two phases:

1. **prefetch** — the task list is dispatched to a
   ``ProcessPoolExecutor``; each worker builds and measures its design
   point under the sweep's normal :class:`~repro.resilience.runner`
   policy (budgets, retries, degraded final attempt, fault injection)
   and ships back a checkpoint-schema record plus its obs buffers.
   Worker outputs are merged **in task order**, not completion order, so
   traces, metrics, and cache stats are deterministic.
2. **consume** — the unchanged serial generators
   (:func:`~repro.eval.experiments.generate_table2` /
   :func:`~repro.eval.experiments.generate_fig1`) run as usual, but
   every ``measure`` call is satisfied from the prefetched records
   instead of re-simulating.  Because records round-trip measurements
   exactly (the same JSON float guarantee the resume path relies on),
   rendered stdout is byte-identical to a serial run.

Checkpointing, resume, stats, and the deterministic
``REPRO_ABORT_AFTER`` interrupt all live in the consume phase via the
inherited :meth:`SweepRunner.commit` bookkeeping, so an interrupted
parallel sweep leaves the same checkpoint prefix a serial one would,
and a resumed parallel sweep skips re-measuring checkpointed designs
(workers still *build* them, in parallel, to learn their names).
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass

from ..cache import ArtifactCache
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..resilience.runner import DesignResult, SweepRunner, result_from_record
from .tasks import SweepTask
from . import worker as worker_mod

__all__ = ["ParallelSweepRunner", "PrebuiltPoint", "DEFAULT_MAX_TASKS_PER_CHILD"]

#: Tasks a pool worker may serve before the whole pool is recycled.
#: Design builds memoize netlists and compiled simulators per process, so
#: a long-lived worker grows monotonically; recycling bounds its footprint
#: the way ``multiprocessing.Pool(maxtasksperchild=…)`` would, but without
#: requiring a non-fork start method.
DEFAULT_MAX_TASKS_PER_CHILD = 64


@dataclass
class PrebuiltPoint:
    """A deferred Fig. 1 point resolved by a worker (no parent rebuild)."""

    name: str | None
    config: str | None
    result: DesignResult | None
    build_error: dict | None = None


def _pool_context():
    """Prefer fork (cheap, library already imported); fall back otherwise."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class ParallelSweepRunner(SweepRunner):
    """A :class:`SweepRunner` that prefetches results across processes."""

    def __init__(self, tasks: list[SweepTask] | tuple = (), jobs: int = 2,
                 cache: ArtifactCache | None = None,
                 max_tasks_per_child: int | None = DEFAULT_MAX_TASKS_PER_CHILD,
                 **kwargs) -> None:
        super().__init__(**kwargs)
        self.tasks = list(tasks)
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.max_tasks_per_child = (None if not max_tasks_per_child
                                    else max(1, int(max_tasks_per_child)))
        self.pools_used = 0
        self._prefetched: dict[str, dict] = {}
        self._deferred: dict[tuple[str, str], dict] = {}
        self._prefetch_done = False

    # ------------------------------------------------------------------
    def prefetch(self) -> int:
        """Measure every task in the pool; returns the prefetched count.

        Pools are recycled every ``jobs * max_tasks_per_child`` tasks so
        that no worker process ever serves more than
        ``max_tasks_per_child`` tasks: long-running sweeps (and the
        evaluation service's background jobs) keep worker memory bounded
        instead of accumulating per-process design memos forever.  Merge
        order stays the task order, so recycling never perturbs output.
        """
        if self._prefetch_done:
            return len(self._prefetched)
        self._prefetch_done = True
        if not self.tasks or self.jobs <= 1:
            return 0
        trace_on = obs_trace.enabled()
        skip = frozenset(self.checkpoint.names()) if self.checkpoint else ()
        base = {"config": self.config, "inject": self.inject_failures,
                "trace": trace_on, "skip": skip}
        cache_dir = self.cache.root if self.cache is not None else None
        results: list[dict | None] = [None] * len(self.tasks)
        if self.max_tasks_per_child is None:
            stride = len(self.tasks)
        else:
            stride = self.jobs * self.max_tasks_per_child
        for start in range(0, len(self.tasks), stride):
            chunk = self.tasks[start:start + stride]
            pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=_pool_context(),
                initializer=worker_mod.init_worker,
                initargs=(cache_dir, trace_on),
            )
            self.pools_used += 1
            try:
                futures = {
                    pool.submit(worker_mod.run_task, dict(base, task=task)):
                        start + i
                    for i, task in enumerate(chunk)
                }
                for future in as_completed(futures):
                    results[futures[future]] = future.result()
            except BaseException:
                pool.shutdown(wait=False, cancel_futures=True)
                raise
            finally:
                pool.shutdown(wait=True)
        self._merge(results)
        obs_trace.event("exec.prefetch_done", tasks=len(self.tasks),
                        jobs=self.jobs, pools=self.pools_used)
        return len(self._prefetched)

    def _merge(self, results: list[dict | None]) -> None:
        """Fold worker outputs in task order (deterministic by design)."""
        for res in results:
            if res is None:
                continue
            if res["spans"]:
                obs_trace.TRACER.ingest(res["spans"])
            if res["metrics"]:
                obs_metrics.REGISTRY.merge_snapshot(res["metrics"])
            if self.cache is not None and res["cache"]:
                self.cache.merge_stats(res["cache"])
            if res["stats"]:
                self.stats["retries"] += res["stats"]["retries"]
                self.stats["degraded_runs"] += res["stats"]["degraded_runs"]
            if res["deferred"]:
                self._deferred[(res["key"], res["label"])] = res
            if not res["skipped"] and res["record"] and res["name"]:
                self._prefetched[res["name"]] = res["record"]

    # ------------------------------------------------------------------
    def _measure_with_retries(self, design) -> DesignResult:
        """Satisfy a measure from the prefetch map; fall back to inline."""
        record = self._prefetched.pop(design.name, None)
        if record is None:
            return super()._measure_with_retries(design)
        return result_from_record(record)

    def deferred_result(self, tool: str, config: str) -> PrebuiltPoint | None:
        """Resolve a deferred ``(config, factory)`` Fig. 1 point.

        Returns ``None`` when no worker handled this point (the caller
        builds and measures inline, exactly like a serial sweep).  A
        checkpoint record still takes precedence over a prefetched
        measurement, preserving resume semantics.
        """
        res = self._deferred.pop((tool, config), None)
        if res is None:
            return None
        if res["build_error"] is not None:
            return PrebuiltPoint(name=None, config=config, result=None,
                                 build_error=res["build_error"])
        name = res["name"]
        self._prefetched.pop(name, None)
        cached = self._from_checkpoint(name)
        if cached is not None:
            return PrebuiltPoint(name=name, config=res["config"],
                                 result=cached)
        if res["record"] is None:
            return None
        result = self.commit(result_from_record(res["record"]))
        return PrebuiltPoint(name=name, config=res["config"], result=result)
