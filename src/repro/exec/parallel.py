"""Sharded sweep execution: a process-pool front-end over ``SweepRunner``.

:class:`ParallelSweepRunner` splits a sweep into two phases:

1. **prefetch** — the task list is dispatched to a
   ``ProcessPoolExecutor``; each worker builds and measures its design
   point under the sweep's normal :class:`~repro.resilience.runner`
   policy (budgets, retries, degraded final attempt, fault injection)
   and ships back a checkpoint-schema record plus its obs buffers.
   Worker outputs are merged **in task order**, not completion order, so
   traces, metrics, and cache stats are deterministic.
2. **consume** — the unchanged serial generators
   (:func:`~repro.eval.experiments.generate_table2` /
   :func:`~repro.eval.experiments.generate_fig1`) run as usual, but
   every ``measure`` call is satisfied from the prefetched records
   instead of re-simulating.  Because records round-trip measurements
   exactly (the same JSON float guarantee the resume path relies on),
   rendered stdout is byte-identical to a serial run.

Checkpointing, resume, stats, and the deterministic
``REPRO_ABORT_AFTER`` interrupt all live in the consume phase via the
inherited :meth:`SweepRunner.commit` bookkeeping, so an interrupted
parallel sweep leaves the same checkpoint prefix a serial one would,
and a resumed parallel sweep skips re-measuring checkpointed designs
(workers still *build* them, in parallel, to learn their names).

**Worker supervision.**  A worker process dying (SIGKILL, segfault, OOM
kill — or a :class:`~repro.chaos.ChaosPolicy` drill) breaks the whole
pool: every unfinished future raises ``BrokenProcessPool`` and the
executor cannot attribute the crash to a task.  The prefetch loop
therefore supervises in rounds: tasks lost to a broken pool are
re-dispatched (fresh pool, exponential backoff, ``exec.worker_restarts``
counted), and a task whose attempts reach :data:`POISON_ATTEMPTS` is
probed once more in a **solo** single-worker pool — if that pool dies
too, the task alone is the culprit and it is quarantined as a
``FAILED(WorkerCrashError)`` cell instead of aborting the sweep.
Quarantined records use the normal checkpoint schema and the merge stays
in task order, so stdout remains byte-identical to a serial run for
every surviving point and resume semantics are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .. import chaos as chaos_mod
from ..cache import ArtifactCache
from ..core.errors import WorkerCrashError
from ..obs import events as obs_events
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..resilience.checkpoint import SCHEMA_VERSION
from ..resilience.errors import failure_record
from ..resilience.runner import DesignResult, SweepRunner, result_from_record
from .executor import DEFAULT_MAX_TASKS_PER_CHILD, POISON_ATTEMPTS, PoolExecutor
from .tasks import SweepTask
from .worker import WorkerContext
from . import worker as worker_mod

__all__ = ["ParallelSweepRunner", "PrebuiltPoint", "DEFAULT_MAX_TASKS_PER_CHILD",
           "POISON_ATTEMPTS"]


@dataclass
class PrebuiltPoint:
    """A deferred Fig. 1 point resolved by a worker (no parent rebuild)."""

    name: str | None
    config: str | None
    result: DesignResult | None
    build_error: dict | None = None


class ParallelSweepRunner(SweepRunner):
    """A :class:`SweepRunner` that prefetches results across processes."""

    def __init__(self, tasks: list[SweepTask] | tuple = (), jobs: int = 2,
                 cache: ArtifactCache | None = None,
                 max_tasks_per_child: int | None = DEFAULT_MAX_TASKS_PER_CHILD,
                 crash_backoff_s: float = 0.05,
                 max_worker_crashes: int | None = None,
                 executor=None,
                 **kwargs) -> None:
        super().__init__(**kwargs)
        self.tasks = list(tasks)
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.max_tasks_per_child = (None if not max_tasks_per_child
                                    else max(1, int(max_tasks_per_child)))
        self.crash_backoff_s = max(0.0, crash_backoff_s)
        self.max_worker_crashes = max_worker_crashes
        #: Injected :class:`~repro.exec.executor.Executor`; ``None``
        #: builds the default :class:`PoolExecutor` lazily in
        #: :meth:`prefetch` (a fabric executor dispatches even with
        #: ``jobs == 1`` — parallelism lives in the remote workers).
        self._executor = executor
        self.pools_used = 0
        self.stats.update({"worker_restarts": 0, "poisoned": 0})
        self._prefetched: dict[str, dict] = {}
        self._deferred: dict[tuple[str, str], dict] = {}
        self._prefetch_done = False

    # ------------------------------------------------------------------
    def prefetch(self) -> int:
        """Measure every task in the pool; returns the prefetched count.

        Pools are recycled every ``jobs * max_tasks_per_child`` tasks so
        that no worker process ever serves more than
        ``max_tasks_per_child`` tasks: long-running sweeps (and the
        evaluation service's background jobs) keep worker memory bounded
        instead of accumulating per-process design memos forever.  Merge
        order stays the task order, so recycling never perturbs output.

        A broken pool (a worker died) does not abort the sweep: its
        unfinished tasks are re-dispatched in the next supervision round
        after an exponential backoff, and a task that keeps killing
        workers is quarantined (see the module docstring).  Crashes are
        bounded by ``max_worker_crashes`` (default ``2 * tasks + 8``);
        past that the sweep fails honestly with
        :class:`~repro.core.errors.WorkerCrashError`.
        """
        if self._prefetch_done:
            return len(self._prefetched)
        self._prefetch_done = True
        if not self.tasks or (self.jobs <= 1 and self._executor is None):
            return 0
        executor = self._executor
        if executor is None:
            executor = PoolExecutor(
                jobs=self.jobs,
                max_tasks_per_child=self.max_tasks_per_child,
                crash_backoff_s=self.crash_backoff_s,
                max_worker_crashes=self.max_worker_crashes)
        trace_on = obs_trace.enabled()
        if trace_on and not obs_trace.TRACER.trace_id:
            obs_trace.new_trace()
        with obs_trace.span("exec.prefetch", tasks=len(self.tasks),
                            jobs=self.jobs) as prefetch_span:
            graft = getattr(prefetch_span, "span_id", None)
            if trace_on:
                # Stamp every task with this sweep's trace context so
                # worker spans adopt the trace id; their subtrees graft
                # under this span at merge time.
                ctx = obs_trace.current_context()
                self.tasks = [replace(task, ctx=(ctx.trace_id, ctx.span_id))
                              for task in self.tasks]
            skip = (frozenset(self.checkpoint.names())
                    if self.checkpoint else ())
            base = {"config": self.config, "inject": self.inject_failures,
                    "trace": trace_on, "skip": skip}
            cache_dir = self.cache.root if self.cache is not None else None
            context = WorkerContext(cache_dir=cache_dir, trace=trace_on,
                                    chaos=chaos_mod.active())
            results = executor.run(self.tasks, base, context)
            self.stats["worker_restarts"] += executor.stats.get(
                "worker_restarts", 0)
            self.pools_used += executor.stats.get("pools", 0)
            for i, res in enumerate(results):
                if res is not None and res.get("crashed"):
                    # The executor gave up on this task (poison pool
                    # worker / double lease expiry): quarantine it as an
                    # honest FAILED(…) cell.
                    self._quarantine(i, res["crashed"])
                    results[i] = None
            self._merge(results, under=graft)
            obs_trace.event("exec.prefetch_done", tasks=len(self.tasks),
                            jobs=self.jobs, pools=self.pools_used,
                            worker_restarts=self.stats["worker_restarts"],
                            poisoned=self.stats["poisoned"])
        return len(self._prefetched)

    def _identify(self, task: SweepTask):
        """``(label, design-or-None)`` — ``None`` for deferred points.

        Resolves through the worker module's per-process memos, which the
        parent also owns under the fork start method; deferred Fig. 1
        factories are *not* invoked (a crashing build must not take the
        parent down), their enumeration label suffices.
        """
        if task.kind == "fig1":
            item = worker_mod._fig1_item(task)
            if isinstance(item, tuple):
                return item[0], None
            return item.name, item
        design = worker_mod._table2_design(task)
        return design.name, design

    def _quarantine(self, index: int, crashes: int) -> None:
        """Record a poison task as an honest ``FAILED(…)`` design point."""
        task = self.tasks[index]
        self.stats["poisoned"] += 1
        obs_metrics.inc("exec.poisoned_tasks")
        obs_trace.event("exec.task_quarantined", kind=task.kind,
                        key=task.key, index=task.index, crashes=crashes)
        obs_events.emit("worker.poison", task=worker_mod.task_id(task),
                        crashes=crashes)
        label, design = self._identify(task)
        error = failure_record(WorkerCrashError(
            f"worker process died {crashes} times running this design "
            f"point; quarantined", design=label, phase="exec.worker",
            task=worker_mod.task_id(task)))
        if design is None:
            # Deferred Fig. 1 point: surface through the same channel a
            # worker-side build failure uses.
            self._deferred[(task.key, label)] = {
                "build_error": error, "name": None, "config": label,
                "record": None}
        else:
            self._prefetched[design.name] = {
                "schema": SCHEMA_VERSION, "design": design.name,
                "status": "failed", "measured": None, "error": error,
                "attempts": crashes, "degraded": False}

    def _merge(self, results: list[dict | None],
               under: int | None = None) -> None:
        """Fold worker outputs in task order (deterministic by design)."""
        for res in results:
            if res is None:
                continue
            if res["spans"]:
                obs_trace.TRACER.ingest(res["spans"], under=under)
            if res.get("events"):
                obs_events.EVENTS.ingest(res["events"])
            if res["metrics"]:
                obs_metrics.REGISTRY.merge_snapshot(res["metrics"])
            if self.cache is not None and res["cache"]:
                self.cache.merge_stats(res["cache"])
            if res["stats"]:
                self.stats["retries"] += res["stats"]["retries"]
                self.stats["degraded_runs"] += res["stats"]["degraded_runs"]
            if res["deferred"]:
                self._deferred[(res["key"], res["label"])] = res
            if not res["skipped"] and res["record"] and res["name"]:
                self._prefetched[res["name"]] = res["record"]

    # ------------------------------------------------------------------
    def _measure_with_retries(self, design) -> DesignResult:
        """Satisfy a measure from the prefetch map; fall back to inline."""
        record = self._prefetched.pop(design.name, None)
        if record is None:
            return super()._measure_with_retries(design)
        return result_from_record(record)

    def deferred_result(self, tool: str, config: str) -> PrebuiltPoint | None:
        """Resolve a deferred ``(config, factory)`` Fig. 1 point.

        Returns ``None`` when no worker handled this point (the caller
        builds and measures inline, exactly like a serial sweep).  A
        checkpoint record still takes precedence over a prefetched
        measurement, preserving resume semantics.
        """
        res = self._deferred.pop((tool, config), None)
        if res is None:
            return None
        if res["build_error"] is not None:
            return PrebuiltPoint(name=None, config=config, result=None,
                                 build_error=res["build_error"])
        name = res["name"]
        self._prefetched.pop(name, None)
        cached = self._from_checkpoint(name)
        if cached is not None:
            return PrebuiltPoint(name=name, config=res["config"],
                                 result=cached)
        if res["record"] is None:
            return None
        result = self.commit(result_from_record(res["record"]))
        return PrebuiltPoint(name=name, config=res["config"], result=result)
