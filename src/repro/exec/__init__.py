"""Sharded sweep execution (``--jobs N``).

Splits Table II / Figure 1 sweeps into per-design-point tasks, measures
them across a process pool, and replays the results through the
unchanged serial generators so rendered output stays byte-identical to
a serial run:

* :mod:`repro.exec.tasks`    — JSON-wire task coordinates;
* :mod:`repro.exec.worker`   — worker-process entry points and the
  shared :class:`WorkerContext` bootstrap;
* :mod:`repro.exec.executor` — the pluggable :class:`Executor` seam and
  the in-process :class:`PoolExecutor`;
* :mod:`repro.exec.parallel` — :class:`ParallelSweepRunner`, the
  executor-backed :class:`~repro.resilience.runner.SweepRunner`.
"""

from .executor import DEFAULT_MAX_TASKS_PER_CHILD, Executor, PoolExecutor
from .parallel import ParallelSweepRunner, PrebuiltPoint
from .tasks import SweepTask, TaskSchemaError, fig1_tasks, table2_tasks
from .worker import WorkerContext

__all__ = ["ParallelSweepRunner", "PrebuiltPoint", "SweepTask",
           "TaskSchemaError", "WorkerContext", "Executor", "PoolExecutor",
           "fig1_tasks", "table2_tasks", "DEFAULT_MAX_TASKS_PER_CHILD"]
