"""Sharded sweep execution (``--jobs N``).

Splits Table II / Figure 1 sweeps into per-design-point tasks, measures
them across a process pool, and replays the results through the
unchanged serial generators so rendered output stays byte-identical to
a serial run:

* :mod:`repro.exec.tasks`    — picklable task coordinates;
* :mod:`repro.exec.worker`   — worker-process entry points;
* :mod:`repro.exec.parallel` — :class:`ParallelSweepRunner`, the
  pool-backed :class:`~repro.resilience.runner.SweepRunner`.
"""

from .parallel import (
    DEFAULT_MAX_TASKS_PER_CHILD,
    ParallelSweepRunner,
    PrebuiltPoint,
)
from .tasks import SweepTask, fig1_tasks, table2_tasks

__all__ = ["ParallelSweepRunner", "PrebuiltPoint", "SweepTask",
           "fig1_tasks", "table2_tasks", "DEFAULT_MAX_TASKS_PER_CHILD"]
