"""Worker-process side of the sharded sweep executor.

Everything here is module-level (the pool pickles references, not
closures).  A worker resolves a :class:`~repro.exec.tasks.SweepTask`
back into a built design, measures it through a private
:class:`~repro.resilience.runner.SweepRunner` carrying the sweep's
budget/retry policy, and ships the outcome back as plain dicts:

* the result in the checkpoint record schema (exact float round-trip,
  the same guarantee the resume path relies on);
* its obs span buffer and metrics snapshot (when tracing is on) for the
  parent's deterministic task-order merge;
* its artifact-cache stats delta.

Design enumerations are memoized per worker process, so a worker
building the Figure 1 structure once serves every point it is handed.
Workers never checkpoint and never abort: the parent owns the
checkpoint (written in serial consume order) and the deterministic
``REPRO_ABORT_AFTER`` hook, which is why :func:`init_worker` drops that
variable from the worker's environment.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass

from .. import cache as cache_mod
from .. import chaos as chaos_mod
from .. import obs
from ..core.errors import ReproError
from ..obs import events as obs_events
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..resilience.errors import failure_record
from ..resilience.runner import ABORT_ENV, SweepRunner, result_to_record
from .tasks import SweepTask

__all__ = ["WorkerContext", "init_worker", "run_task", "task_id"]

# Per-worker-process memos: fig1 enumerations by sizes, table2 pairs by key.
_FIG1_LISTS: dict[tuple, dict] = {}
_TABLE2_PAIRS: dict[str, tuple] = {}


@dataclass(frozen=True)
class WorkerContext:
    """The per-process bootstrap every worker flavor shares.

    Pool workers (``exec.parallel``), serve evaluator workers
    (``serve.pool``), and fabric pull-workers (``fabric.worker``) all
    start from the same three decisions — which artifact cache to use,
    whether tracing is on, which chaos policy applies — plus the
    invariant that a worker never inherits the parent's deterministic
    abort hook.  Centralizing them here keeps the three flavors from
    drifting.
    """

    cache_dir: str | None = None
    trace: bool = False
    chaos: object | None = None

    def apply(self) -> None:
        """Install this context into the current process."""
        os.environ.pop(ABORT_ENV, None)
        # Explicitly (re)set cache and chaos: a forked worker inherits
        # the parent's active handles, which must not leak into a clean
        # worker.
        cache_mod.set_active(
            cache_mod.ArtifactCache(self.cache_dir) if self.cache_dir
            else None)
        chaos_mod.set_active(self.chaos)
        if self.trace:
            obs.enable()
        else:
            # A forked worker inherits the parent's enabled flag/buffers.
            obs.disable()
        obs.clear()


def init_worker(context: WorkerContext) -> None:
    """Pool initializer: apply the shared worker bootstrap."""
    context.apply()


def task_id(task: SweepTask) -> str:
    """The stable ``kind:key:index`` id chaos selectors match against."""
    return f"{task.kind}:{task.key}:{task.index}"


def _fig1_item(task: SweepTask):
    lists = _FIG1_LISTS.get(task.sizes)
    if lists is None:
        from ..eval.experiments import fig1_design_lists

        lists = _FIG1_LISTS[task.sizes] = dict(
            fig1_design_lists(**dict(task.sizes)))
    return lists[task.key][task.index]


def _table2_design(task: SweepTask):
    pair = _TABLE2_PAIRS.get(task.key)
    if pair is None:
        from ..eval.experiments import PAIRS

        pair = _TABLE2_PAIRS[task.key] = PAIRS[task.key]()
    return pair[task.index]


def run_task(payload: dict) -> dict:
    """Resolve, build, and measure one task; never raises ``ReproError``.

    ``payload`` carries ``task`` (a :class:`SweepTask` wire record, see
    :meth:`SweepTask.to_record`), ``config`` (the sweep's
    :class:`~repro.resilience.runner.RunnerConfig`), ``inject``
    (forced-failure design names), ``skip`` (names already checkpointed —
    built for identification but not re-measured), and ``trace``.
    """
    task = payload["task"]
    if isinstance(task, dict):
        task = SweepTask.from_record(task)
    policy = chaos_mod.active()
    if (policy is not None
            and policy.should_kill(task_id(task), payload.get("attempt", 0))):
        # Chaos drill: die the way a segfault/OOM-kill would — no Python
        # unwinding, no result — so the parent's supervision is exercised
        # against the real BrokenProcessPool path.
        os.kill(os.getpid(), signal.SIGKILL)
    trace_on = bool(payload.get("trace"))
    if trace_on:
        obs.clear()
        obs.enable()
        if task.ctx:
            # Adopt the parent's trace: every span/event this worker
            # records carries the sweep's trace id, and the shipped
            # buffer grafts under the parent's dispatch span on ingest.
            obs_trace.new_trace(task.ctx[0])
    cache = cache_mod.active()
    cache_before = dict(cache.stats) if cache is not None else None
    out = {
        "kind": task.kind, "key": task.key, "index": task.index,
        "deferred": False, "label": None, "name": None, "config": None,
        "record": None, "build_error": None, "skipped": False,
        "stats": None, "spans": [], "metrics": None, "cache": None,
        "events": [],
    }
    try:
        with obs_trace.span("exec.task", task=task_id(task),
                            attempt=payload.get("attempt", 0)):
            design = None
            if task.kind == "fig1":
                item = _fig1_item(task)
                if isinstance(item, tuple):
                    out["deferred"] = True
                    label, factory = item
                    out["label"] = out["config"] = label
                    try:
                        design = factory()
                    except ReproError as exc:
                        out["build_error"] = failure_record(
                            exc, design=label, phase="frontend.build")
                else:
                    design = item
            else:
                design = _table2_design(task)
            if design is not None:
                out["name"] = design.name
                out["config"] = design.config
                if design.name in payload.get("skip", ()):
                    out["skipped"] = True
                else:
                    runner = SweepRunner(
                        config=payload["config"],
                        inject_failures=payload.get("inject", ()),
                        abort_after=None,
                    )
                    result = runner._measure_with_retries(design)
                    out["record"] = result_to_record(result)
                    out["stats"] = {
                        "retries": runner.stats["retries"],
                        "degraded_runs": runner.stats["degraded_runs"],
                    }
    finally:
        if trace_on:
            out["spans"] = [rec.to_dict() for rec in obs_trace.events()]
            out["events"] = obs_events.EVENTS.events()
            out["metrics"] = obs_metrics.snapshot()
            obs.clear()
        if cache is not None:
            out["cache"] = {key: cache.stats[key] - cache_before[key]
                            for key in cache.stats}
    return out
