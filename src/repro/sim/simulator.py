"""Cycle-accurate netlist simulation.

:class:`Simulator` drives a flat :class:`~repro.rtl.elaborate.Netlist` (or a
:class:`~repro.rtl.module.Module`, elaborated on the fly) with an implicit
clock.  Three evaluation engines (see :mod:`repro.engines`) share one
semantics:

* ``engine="compiled"`` (default) — generated Python via
  :mod:`repro.sim.compile`, fast enough for system-level AXI-Stream runs;
* ``engine="interp"`` — the reference interpreter from
  :mod:`repro.rtl.ir`, used to cross-check the compilers in tests;
* ``engine="batch"`` — the lane-packed compiler from
  :mod:`repro.sim.batch` run at one lane, so single-block use sites can
  exercise the exact code the batch runner executes.

The simulation contract per clock cycle: poke inputs, (implicitly) settle
combinational logic, observe outputs, then :meth:`step` commits registers
and memory writes and settles again.
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..core.bits import BV
from ..core.errors import SimulationError
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..resilience import budget as res_budget
from ..rtl.elaborate import Netlist, elaborate
from ..rtl.ir import Signal, eval_expr
from ..rtl.module import Memory, Module
from .compile import compile_netlist

__all__ = ["Simulator"]


class Simulator:
    """Single-clock synchronous simulator for an elaborated netlist."""

    def __init__(
        self,
        design: Module | Netlist,
        engine: str = "compiled",
    ) -> None:
        if isinstance(design, Module):
            design = elaborate(design)
        try:
            from ..engines import resolve_engine

            engine = resolve_engine(engine, "sim")
        except ValueError as exc:
            # Historical contract: a bad engine at the simulator level is
            # a SimulationError, not a usage error.
            raise SimulationError(str(exc)) from exc
        self.netlist = design
        self.engine = engine
        if engine == "batch":
            from .batch import scalar_adapter

            self._compiled = scalar_adapter(design)
        else:
            self._compiled = compile_netlist(design)
        self._index_of = self._compiled.index_of
        self._mem_index_of = self._compiled.mem_index_of
        self._by_name = {sig.name: sig for sig in self._index_of}
        self._inputs = set(design.inputs)
        self._values: list[int] = [0] * len(self._index_of)
        self._mems: list[list[int]] = []
        self._comb_order = design.comb_order()
        self._dirty = True
        self.cycles = 0
        self.settles = 0   # lifetime count of combinational settle passes
        self._watchers: list[Callable[[int], None]] = []
        if obs_trace.enabled():
            obs_metrics.inc("sim.instances")
            obs_metrics.inc(f"sim.engine.{engine}")
        self.reset()

    # ------------------------------------------------------------------
    # state management
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Synchronous reset: registers to init values, memories to init."""
        for sig in self._index_of:
            self._values[self._index_of[sig]] = 0
        for reg in self.netlist.registers:
            self._values[self._index_of[reg.signal]] = reg.init
        self._mems = []
        for mem in self.netlist.memories:
            words = list(mem.init[: mem.depth])
            words += [0] * (mem.depth - len(words))
            msk = (1 << mem.width) - 1
            self._mems.append([w & msk for w in words])
        self.cycles = 0
        self._dirty = True

    def _resolve(self, signal: Signal | str) -> Signal:
        if isinstance(signal, str):
            resolved = self._by_name.get(signal)
            if resolved is None:
                raise SimulationError(f"no signal named {signal!r}")
            return resolved
        if signal not in self._index_of:
            raise SimulationError(f"signal {signal.name!r} is not in this netlist")
        return signal

    # ------------------------------------------------------------------
    # poke / peek
    # ------------------------------------------------------------------
    def poke(self, signal: Signal | str, value: int | BV) -> None:
        """Drive an input signal (held until poked again)."""
        sig = self._resolve(signal)
        if sig not in self._inputs:
            raise SimulationError(f"cannot poke non-input signal {sig.name!r}")
        if isinstance(value, BV):
            if value.width != sig.width:
                raise SimulationError(
                    f"poke {sig.name!r}: BV width {value.width} != {sig.width}"
                )
            value = value.uint
        self._values[self._index_of[sig]] = value & ((1 << sig.width) - 1)
        self._dirty = True

    def poke_register(self, signal: Signal | str, value: int | BV) -> None:
        """Testbench backdoor: overwrite a register's current value."""
        sig = self._resolve(signal)
        if not any(reg.signal is sig for reg in self.netlist.registers):
            raise SimulationError(f"{sig.name!r} is not a register")
        if isinstance(value, BV):
            value = value.uint
        self._values[self._index_of[sig]] = value & ((1 << sig.width) - 1)
        self._dirty = True

    def peek(self, signal: Signal | str) -> BV:
        """Observe any signal's settled value."""
        sig = self._resolve(signal)
        self._settle_if_dirty()
        return BV(self._values[self._index_of[sig]], sig.width)

    def peek_int(self, signal: Signal | str) -> int:
        """Observe a signal as an unsigned integer."""
        return self.peek(signal).uint

    def read_memory(self, mem: Memory) -> list[int]:
        """Snapshot a memory's contents."""
        index = self._mem_index_of.get(mem)
        if index is None:
            raise SimulationError(f"memory {mem.name!r} is not in this netlist")
        return list(self._mems[index])

    def write_memory(self, mem: Memory, contents: Iterable[int]) -> None:
        """Overwrite a memory's contents (testbench backdoor)."""
        index = self._mem_index_of.get(mem)
        if index is None:
            raise SimulationError(f"memory {mem.name!r} is not in this netlist")
        words = list(contents)
        if len(words) != mem.depth:
            raise SimulationError(
                f"memory {mem.name!r}: expected {mem.depth} words, got {len(words)}"
            )
        msk = (1 << mem.width) - 1
        self._mems[index] = [w & msk for w in words]
        self._dirty = True

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def _settle_if_dirty(self) -> None:
        if not self._dirty:
            return
        if self.engine == "interp":
            self._settle_interp()
        else:
            self._compiled.settle(self._values, self._mems)
        self._dirty = False
        self.settles += 1

    def _settle_interp(self) -> None:
        read = lambda sig: self._values[self._index_of[sig]]
        read_mem = lambda mem, addr: self._mems[self._mem_index_of[mem]][addr % mem.depth]
        for sig, expr in self._comb_order:
            self._values[self._index_of[sig]] = eval_expr(expr, read, read_mem)

    def step(self, cycles: int = 1) -> None:
        """Advance the clock by ``cycles`` edges.

        While a :mod:`repro.resilience.budget` is armed, each edge charges
        one cycle against it; :class:`~repro.core.errors.BudgetExceeded`
        propagates before the over-budget edge is simulated.
        """
        charge = res_budget.charge
        for _ in range(cycles):
            charge()
            self._settle_if_dirty()
            if self.engine == "interp":
                self._tick_interp()
            else:
                self._compiled.tick(self._values, self._mems)
            self._dirty = True
            self._settle_if_dirty()
            self.cycles += 1
            for watcher in self._watchers:
                watcher(self.cycles)

    def _tick_interp(self) -> None:
        read = lambda sig: self._values[self._index_of[sig]]
        read_mem = lambda mem, addr: self._mems[self._mem_index_of[mem]][addr % mem.depth]
        reg_updates: list[tuple[int, int]] = []
        for reg in self.netlist.registers:
            if reg.en is not None and not eval_expr(reg.en, read, read_mem):
                continue
            reg_updates.append(
                (self._index_of[reg.signal], eval_expr(reg.next, read, read_mem))
            )
        mem_updates: list[tuple[int, int, int]] = []
        for mi, mem in enumerate(self.netlist.memories):
            for write in mem.writes:
                if eval_expr(write.en, read, read_mem):
                    addr = eval_expr(write.addr, read, read_mem) % mem.depth
                    data = eval_expr(write.data, read, read_mem) & ((1 << mem.width) - 1)
                    mem_updates.append((mi, addr, data))
        for index, value in reg_updates:
            self._values[index] = value
        for mi, addr, data in mem_updates:
            self._mems[mi][addr] = data

    def run_until(
        self,
        predicate: Callable[["Simulator"], bool],
        timeout: int = 10_000,
    ) -> int:
        """Step until ``predicate(self)`` holds; returns cycles consumed.

        Raises :class:`SimulationError` when ``timeout`` cycles pass first.
        """
        start = self.cycles
        while not predicate(self):
            if self.cycles - start >= timeout:
                raise SimulationError(
                    f"run_until timed out after {timeout} cycles",
                    phase="sim.run_until", timeout=timeout,
                )
            self.step()
        return self.cycles - start

    def add_watcher(self, watcher: Callable[[int], None]) -> None:
        """Register a callback invoked after every clock edge."""
        self._watchers.append(watcher)

    # ------------------------------------------------------------------
    @property
    def compiled_source(self) -> str:
        """The generated Python source (debugging aid)."""
        return self._compiled.source
