"""Batch-vectorized netlist evaluation: B input blocks per settle/tick pass.

The scalar compiled simulator (:mod:`repro.sim.compile`) walks one design
instance per call.  This module compiles the *same* levelized netlist into a
**lane-packed** evaluator: every signal holds ``B`` independent simulation
lanes packed into one Python big integer at a fixed stride
``S = max_expression_width + 1``::

    packed(sig) = sum(lane_value[i] << (i * S) for i in range(B))

One guard bit per lane (the ``+ 1``) is what makes carry-generating
operations safe: an add of two W-bit lanes peaks at ``2**(W+1) - 2`` and
the carry lands in the guard bit instead of the neighbouring lane.  The
generated code is pure stdlib int arithmetic — no numpy — and each emitted
operation preserves the invariant *every lane field is an exact masked
value and every guard bit is zero*:

* add/sub/neg: compute with the guard bit, then mask the lanes;
  subtraction adds a per-lane ``2**W`` bias first so no lane ever borrows
  from its neighbour;
* shifts by constants pre- or post-mask so bits spilling across the lane
  boundary are discarded (``shl`` masks the operand to ``W - c`` bits
  *before* shifting; ``lshr`` masks to ``W - c`` bits *after*);
* compares use the classic SWAR carry-out trick: ``a >= b`` is the guard
  bit of ``(a | rep(2**W)) - b``; equality is the carry out of
  ``(a ^ b) + rep(2**W - 1)``; signed orderings bias both operands by
  ``2**(W-1)`` first;
* muxes smear the packed 1-bit select into a per-lane mask with
  ``(sel << W) - sel`` (no bigint multiply) and blend both arms;
* the few genuinely scalar ops (full-width multiply of two signals,
  variable-amount shifts, reduction xor, memory ports) fall back to a
  per-lane loop that reuses the reference semantics from
  :mod:`repro.rtl.ir`, so the batch engine is bit-exact by construction
  even where it is not vectorized.

Three consumers sit on top of :func:`compile_batch`:

* :func:`scalar_adapter` — a ``lanes=1`` compilation shaped like a
  :class:`~repro.sim.compile.CompiledNetlist`.  With one lane a packed
  value *is* the plain value, so :class:`~repro.sim.Simulator` can run
  ``engine="batch"`` through its normal settle/tick path (this is what
  ``verify``/``fig1``/``table2 --engine batch`` use, and why their output
  is byte-identical to ``--engine compiled``);
* :class:`BatchSimulator` — a B-lane lockstep simulator with per-lane
  poke/peek;
* :class:`BatchStreamRunner` — streams N input blocks through B lockstep
  copies of a wrapped design (one settle per clock for all lanes), used by
  the serving tier's ``engine="batch"`` path and the throughput benchmark.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Sequence

from ..core.errors import HarnessTimeout, ProtocolError, SimulationError
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..resilience import budget as res_budget
from ..rtl.elaborate import Netlist, elaborate
from ..rtl.ir import (
    BinOp,
    BinOpKind,
    Cat,
    Const,
    Expr,
    Ext,
    MemRead,
    Mux,
    Ref,
    Signal,
    Slice,
    UnOp,
    UnOpKind,
    _eval_binop,
    _eval_unop,
    to_signed,
)
from ..rtl.module import Memory, Module
from .compile import CompiledNetlist, _children

__all__ = [
    "BatchCompiled",
    "compile_batch",
    "scalar_adapter",
    "BatchSimulator",
    "BatchStreamRunner",
]


# ----------------------------------------------------------------------
# per-lane fallback helpers (installed in the compiled namespace)
# ----------------------------------------------------------------------

def _pl1(a: int, lanes: int, stride: int, la: int, fn) -> int:
    """Apply a scalar unary op lane by lane."""
    r = 0
    for i in range(lanes):
        sh = i * stride
        r |= fn((a >> sh) & la) << sh
    return r


def _pl2(a: int, b: int, lanes: int, stride: int, la: int, lb: int, fn) -> int:
    """Apply a scalar binary op lane by lane."""
    r = 0
    for i in range(lanes):
        sh = i * stride
        r |= fn((a >> sh) & la, (b >> sh) & lb) << sh
    return r


def _mrd(mem, addr: int, lanes: int, stride: int, la: int,
         depth: int, msk: int) -> int:
    """Per-lane asynchronous memory read (``mem`` is a list of lane lists)."""
    r = 0
    for i in range(lanes):
        sh = i * stride
        r |= (mem[i][((addr >> sh) & la) % depth] & msk) << sh
    return r


def _mwr(mem, en: int, addr: int, data: int, lanes: int, stride: int,
         la: int, ld: int, depth: int, msk: int) -> None:
    """Per-lane synchronous memory write commit."""
    for i in range(lanes):
        sh = i * stride
        if (en >> sh) & 1:
            mem[i][((addr >> sh) & la) % depth] = ((data >> sh) & ld) & msk


# ----------------------------------------------------------------------
# compilation
# ----------------------------------------------------------------------

@dataclass(eq=False)
class BatchCompiled:
    """The executable lane-packed form of a netlist.

    ``settle(values, mems)`` / ``tick(values, mems)`` mirror the scalar
    :class:`~repro.sim.compile.CompiledNetlist` contract, except every
    entry of ``values`` packs ``lanes`` lane fields at ``stride`` bits and
    ``mems`` holds one backing list *per lane*:
    ``mems[mem_index][lane][address]``.
    """

    netlist: Netlist
    lanes: int
    stride: int
    ones: int  # sum(1 << (i * stride)) — the packed all-lanes value 1
    index_of: dict[Signal, int]
    mem_index_of: dict[Memory, int]
    settle: object
    tick: object
    source: str


class _Pool:
    """Interned big constants and fallback closures for the ``_K`` table."""

    def __init__(self) -> None:
        self.objs: list[object] = []
        self._by_int: dict[int, int] = {}

    def lit(self, value: int) -> str:
        if -(1 << 32) < value < (1 << 32):
            return repr(value)
        idx = self._by_int.get(value)
        if idx is None:
            idx = len(self.objs)
            self.objs.append(value)
            self._by_int[value] = idx
        return f"_K[{idx}]"

    def fn(self, f) -> str:
        idx = len(self.objs)
        self.objs.append(f)
        return f"_K[{idx}]"


_ATOM = re.compile(r"^(?:[A-Za-z_]\w*|v\[\d+\]|_K\[\d+\]|\d+)$")

_LOGIC_OPS = {BinOpKind.AND: "&", BinOpKind.OR: "|", BinOpKind.XOR: "^"}
_SIGNED_TO_UNSIGNED = {
    BinOpKind.SLT: BinOpKind.ULT,
    BinOpKind.SLE: BinOpKind.ULE,
    BinOpKind.SGT: BinOpKind.UGT,
    BinOpKind.SGE: BinOpKind.UGE,
}


class _BatchEmitter:
    """Shared-subexpression-aware emitter for lane-packed code."""

    def __init__(self, index_of: dict[Signal, int],
                 mem_index_of: dict[Memory, int],
                 lanes: int, stride: int, pool: _Pool) -> None:
        self._index_of = index_of
        self._mem_index_of = mem_index_of
        self._lanes = lanes
        self._stride = stride
        self._ones = sum(1 << (i * stride) for i in range(lanes))
        self._pool = pool
        self._counts: dict[int, int] = {}
        self._temp_of: dict[int, str] = {}
        self._smear_of: dict[int, str] = {}
        self._lines: list[str] = []
        self._next_temp = 0

    # -- analysis ------------------------------------------------------
    def count(self, expr: Expr) -> None:
        key = id(expr)
        self._counts[key] = self._counts.get(key, 0) + 1
        if self._counts[key] > 1:
            return
        for child in _children(expr):
            self.count(child)

    # -- constants -----------------------------------------------------
    def _lit(self, value: int) -> str:
        return self._pool.lit(value)

    def _rep(self, value: int) -> str:
        """The packed constant with ``value`` in every lane."""
        return self._lit(value * self._ones)

    def _rmask(self, width: int) -> str:
        """The packed all-lanes mask ``(1 << width) - 1``."""
        return self._rep((1 << width) - 1)

    # -- emission ------------------------------------------------------
    def _bind(self, code: str) -> str:
        name = f"t{self._next_temp}"
        self._next_temp += 1
        self._lines.append(f"    {name} = {code}")
        return name

    def code_for(self, expr: Expr) -> str:
        key = id(expr)
        if key in self._temp_of:
            return self._temp_of[key]
        shared = (self._counts.get(key, 0) > 1
                  and not isinstance(expr, (Const, Ref)))
        code = self._emit(expr)
        if shared:
            if not _ATOM.match(code):
                code = self._bind(code)
            self._temp_of[key] = code
        return code

    def atom(self, expr: Expr) -> str:
        """Like :meth:`code_for` but guaranteed safe to reference twice."""
        code = self.code_for(expr)
        if _ATOM.match(code):
            return code
        return self._bind(code)

    def smear(self, sel: Expr) -> str:
        """A per-lane mask temp: all-ones where ``sel``'s lane is 1.

        The mask fills the whole ``stride - 1``-bit lane field, so one
        smear per distinct select expression serves every mux arm and
        register enable of any width (masking wider than the value is
        harmless — lane fields are exact).  ``(sel << k) - sel`` builds it
        with two linear bigint ops instead of a multiply.
        """
        key = id(sel)
        name = self._smear_of.get(key)
        if name is None:
            code = self.atom(sel)
            name = self._bind(
                f"(({code}) << {self._stride - 1}) - ({code})")
            self._smear_of[key] = name
        return name

    def statement(self, line: str) -> None:
        self._lines.append(f"    {line}")

    @property
    def lines(self) -> list[str]:
        return self._lines

    # -- node dispatch -------------------------------------------------
    def _emit(self, expr: Expr) -> str:
        if isinstance(expr, Const):
            return self._rep(expr.value)
        if isinstance(expr, Ref):
            return f"v[{self._index_of[expr.signal]}]"
        if isinstance(expr, BinOp):
            return self._emit_binop(expr)
        if isinstance(expr, UnOp):
            return self._emit_unop(expr)
        if isinstance(expr, Mux):
            smear = self.smear(expr.sel)
            if isinstance(expr.if_false, Const) and expr.if_false.value == 0:
                return f"(({self.code_for(expr.if_true)}) & {smear})"
            if isinstance(expr.if_true, Const) and expr.if_true.value == 0:
                f = self.atom(expr.if_false)
                return f"(({f}) ^ (({f}) & {smear}))"
            t = self.code_for(expr.if_true)
            f = self.atom(expr.if_false)
            return f"(((({t}) ^ ({f})) & {smear}) ^ ({f}))"
        if isinstance(expr, Cat):
            pieces = []
            shift = expr.width
            for part in expr.parts:
                shift -= part.width
                code = self.code_for(part)
                pieces.append(f"(({code}) << {shift})" if shift else f"({code})")
            return "(" + " | ".join(pieces) + ")"
        if isinstance(expr, Slice):
            a = self.code_for(expr.a)
            if expr.lo == 0:
                return f"(({a}) & {self._rmask(expr.width)})"
            return f"((({a}) >> {expr.lo}) & {self._rmask(expr.width)})"
        if isinstance(expr, Ext):
            wa, w = expr.a.width, expr.width
            if not expr.signed or w == wa:
                # Lane fields are already exact masked values, so both
                # zero-extension and same-width reinterpretation are no-ops.
                return self.code_for(expr.a)
            a = self.atom(expr.a)
            s = self._bind(f"((({a}) >> {wa - 1}) & {self._rep(1)})")
            return f"(({a}) | (({s} << {w}) - ({s} << {wa})))"
        if isinstance(expr, MemRead):
            addr = self.code_for(expr.addr)
            mem = expr.memory
            la = self._lit((1 << expr.addr.width) - 1)
            msk = self._lit((1 << expr.width) - 1)
            return (f"_mrd(mems[{self._mem_index_of[mem]}], ({addr}), "
                    f"{self._lanes}, {self._stride}, {la}, {mem.depth}, {msk})")
        raise TypeError(f"unknown expression node {type(expr).__name__}")

    def _emit_binop(self, expr: BinOp) -> str:
        kind, w = expr.kind, expr.width
        K = BinOpKind
        if kind is K.ADD:
            a, b = self.code_for(expr.a), self.code_for(expr.b)
            return f"(((({a}) + ({b}))) & {self._rmask(w)})"
        if kind is K.SUB:
            a, b = self.code_for(expr.a), self.code_for(expr.b)
            return (f"((((({a}) + {self._rep(1 << w)}) - ({b}))) "
                    f"& {self._rmask(w)})")
        if kind in _LOGIC_OPS:
            a, b = self.code_for(expr.a), self.code_for(expr.b)
            return f"(({a}) {_LOGIC_OPS[kind]} ({b}))"
        if kind is K.MUL:
            # A constant factor multiplies every lane in place: the full
            # product of a W_a-bit lane and the constant is < 2**width,
            # which fits inside the lane, so one bigint multiply does all
            # lanes at once.  Two non-constant operands would need a
            # 2*width partial product — per-lane fallback.
            if isinstance(expr.a, Const) and isinstance(expr.b, Const):
                return self._rep((expr.a.value * expr.b.value)
                                 & ((1 << w) - 1))
            if isinstance(expr.b, Const):
                return f"(({self.code_for(expr.a)}) * {expr.b.value})"
            if isinstance(expr.a, Const):
                return f"(({self.code_for(expr.b)}) * {expr.a.value})"
            return self._fallback2(expr)
        if kind is K.MULS:
            # Signed multiply by a constant, vectorized: with s the packed
            # sign bits of the variable operand and sc the signed constant,
            #   sx(a)*sc = a*|sc| - s*(|sc| << wa)   (sc >= 0)
            #            = s*(|sc| << wa) - a*|sc|   (sc < 0)
            # Both products stay below 2**(w-1) per lane (a < 2**wa,
            # |sc| <= 2**(wb-1)), so a whole-vector multiply by the scalar
            # is exact, and the difference uses the same +2**w bias as SUB.
            ca, cb = isinstance(expr.a, Const), isinstance(expr.b, Const)
            if ca and cb:
                val = (to_signed(expr.a.value, expr.a.width)
                       * to_signed(expr.b.value, expr.b.width))
                return self._rep(val & ((1 << w) - 1))
            if ca or cb:
                var, const = (expr.b, expr.a) if ca else (expr.a, expr.b)
                sc = to_signed(const.value, const.width)
                if sc == 0:
                    return self._rep(0)
                wa = var.width
                a = self.atom(var)
                mag = abs(sc)
                p = a if mag == 1 else self._bind(f"(({a}) * {self._lit(mag)})")
                s = self._bind(f"((({a}) >> {wa - 1}) & {self._rep(1)})")
                q = self._bind(f"(({s}) * {self._lit(mag << wa)})")
                hi, lo = (q, p) if sc < 0 else (p, q)
                return (f"(((({hi}) + {self._rep(1 << w)}) - ({lo})) "
                        f"& {self._rmask(w)})")
            return self._fallback2(expr)
        if kind in (K.SHL, K.LSHR, K.ASHR):
            if not isinstance(expr.b, Const):
                return self._fallback2(expr)
            c = expr.b.value
            if kind is K.SHL:
                if c >= w:
                    return "0"
                if c == 0:
                    return self.code_for(expr.a)
                a = self.code_for(expr.a)
                return f"((({a}) & {self._rmask(w - c)}) << {c})"
            if kind is K.LSHR:
                if c >= w:
                    return "0"
                if c == 0:
                    return self.code_for(expr.a)
                a = self.code_for(expr.a)
                return f"((({a}) >> {c}) & {self._rmask(w - c)})"
            shift = min(c, w - 1)
            if shift == 0:
                return self.code_for(expr.a)
            a = self.atom(expr.a)
            s = self._bind(f"((({a}) >> {w - 1}) & {self._rep(1)})")
            logical = f"((({a}) >> {shift}) & {self._rmask(w - shift)})"
            fill = f"(({s} << {w}) - ({s} << {w - shift}))"
            return f"({logical} | {fill})"
        # Comparisons (result width 1).
        wa = expr.a.width
        if kind in _SIGNED_TO_UNSIGNED:
            bias = self._rep(1 << (wa - 1))
            a = f"(({self.code_for(expr.a)}) ^ {bias})"
            b = f"(({self.code_for(expr.b)}) ^ {bias})"
            kind = _SIGNED_TO_UNSIGNED[kind]
        else:
            a = f"({self.code_for(expr.a)})"
            b = f"({self.code_for(expr.b)})"
        one = self._rep(1)
        if kind is K.EQ:
            return (f"(((((({a}) ^ ({b})) + {self._rmask(wa)}) >> {wa}) "
                    f"& {one}) ^ {one})")
        if kind is K.NE:
            return (f"(((((({a}) ^ ({b})) + {self._rmask(wa)}) >> {wa}) "
                    f"& {one}))")
        if kind in (K.UGT, K.ULE):
            a, b = b, a
            kind = K.ULT if kind is K.UGT else K.UGE
        # a >= b per lane == carry out of (a + 2**wa) - b.
        uge = (f"((((({a}) | {self._rep(1 << wa)}) - ({b})) >> {wa}) "
               f"& {one})")
        if kind is K.UGE:
            return f"({uge})"
        return f"(({uge}) ^ {one})"

    def _emit_unop(self, expr: UnOp) -> str:
        kind, wa = expr.kind, expr.a.width
        a = self.code_for(expr.a)
        one = self._rep(1)
        if kind is UnOpKind.NOT:
            return f"(({a}) ^ {self._rmask(wa)})"
        if kind is UnOpKind.NEG:
            return f"(({self._rep(1 << wa)} - ({a})) & {self._rmask(wa)})"
        if kind is UnOpKind.REDOR:
            return f"(((({a}) + {self._rmask(wa)}) >> {wa}) & {one})"
        if kind is UnOpKind.REDAND:
            return (f"((((((({a}) ^ {self._rmask(wa)})) + {self._rmask(wa)}) "
                    f">> {wa}) & {one}) ^ {one})")
        if kind is UnOpKind.REDXOR:
            f = self._pool.fn(lambda x, _e=expr: _eval_unop(_e, x))
            la = self._lit((1 << wa) - 1)
            return f"_pl1(({a}), {self._lanes}, {self._stride}, {la}, {f})"
        raise TypeError(f"unknown unop {kind}")

    def _fallback2(self, expr: BinOp) -> str:
        a, b = self.code_for(expr.a), self.code_for(expr.b)
        f = self._pool.fn(lambda x, y, _e=expr: _eval_binop(_e, x, y))
        la = self._lit((1 << expr.a.width) - 1)
        lb = self._lit((1 << expr.b.width) - 1)
        return (f"_pl2(({a}), ({b}), {self._lanes}, {self._stride}, "
                f"{la}, {lb}, {f})")


def _max_expr_width(netlist: Netlist) -> int:
    """The widest value anywhere in the design (signals and expressions)."""
    seen: set[int] = set()
    widest = 1

    def walk(expr: Expr) -> None:
        nonlocal widest
        if id(expr) in seen:
            return
        seen.add(id(expr))
        if expr.width > widest:
            widest = expr.width
        for child in _children(expr):
            walk(child)

    for _sig, expr in netlist.comb_order():
        walk(expr)
    for reg in netlist.registers:
        walk(reg.next)
        if reg.en is not None:
            walk(reg.en)
    for mem in netlist.memories:
        for write in mem.writes:
            walk(write.en)
            walk(write.addr)
            walk(write.data)
    for sig in netlist.signals():
        if sig.width > widest:
            widest = sig.width
    return widest


def compile_batch(netlist: Netlist, lanes: int) -> BatchCompiled:
    """Compile ``netlist`` into lane-packed ``settle``/``tick`` functions."""
    if lanes < 1:
        raise SimulationError(f"batch compilation needs lanes >= 1, got {lanes}")
    with obs_trace.span("sim.batch.compile", netlist=netlist.name,
                        lanes=lanes) as span:
        return _compile_batch_traced(netlist, lanes, span)


def _compile_batch_traced(netlist: Netlist, lanes: int, span) -> BatchCompiled:
    signals = netlist.signals()
    index_of = {sig: i for i, sig in enumerate(signals)}
    mem_index_of = {mem: i for i, mem in enumerate(netlist.memories)}
    ordered = netlist.comb_order()
    stride = _max_expr_width(netlist) + 1  # one guard bit per lane
    pool = _Pool()

    # -- settle --------------------------------------------------------
    settle_emit = _BatchEmitter(index_of, mem_index_of, lanes, stride, pool)
    for _sig, expr in ordered:
        settle_emit.count(expr)
    for sig, expr in ordered:
        code = settle_emit.code_for(expr)
        settle_emit.statement(f"v[{index_of[sig]}] = {code}")
    settle_body = settle_emit.lines or ["    pass"]

    # -- tick ----------------------------------------------------------
    tick_emit = _BatchEmitter(index_of, mem_index_of, lanes, stride, pool)
    for reg in netlist.registers:
        tick_emit.count(reg.next)
        if reg.en is not None:
            tick_emit.count(reg.en)
    for mem in netlist.memories:
        for write in mem.writes:
            tick_emit.count(write.en)
            tick_emit.count(write.addr)
            tick_emit.count(write.data)

    commit_lines: list[str] = []
    for i, reg in enumerate(netlist.registers):
        idx = index_of[reg.signal]
        next_code = tick_emit.code_for(reg.next)
        if reg.en is None:
            tick_emit.statement(f"n{i} = {next_code}")
        else:
            smear = tick_emit.smear(reg.en)
            tick_emit.statement(
                f"n{i} = ((({next_code}) ^ v[{idx}]) & {smear}) ^ v[{idx}]")
        commit_lines.append(f"    v[{idx}] = n{i}")
    for mi, mem in enumerate(netlist.memories):
        for wi, write in enumerate(mem.writes):
            en_code = tick_emit.code_for(write.en)
            addr_code = tick_emit.code_for(write.addr)
            data_code = tick_emit.code_for(write.data)
            la = tick_emit._lit((1 << write.addr.width) - 1)
            ld = tick_emit._lit((1 << write.data.width) - 1)
            msk = tick_emit._lit((1 << mem.width) - 1)
            tick_emit.statement(
                f"w{mi}_{wi} = (({en_code}), ({addr_code}), ({data_code}))")
            commit_lines.append(
                f"    _mwr(mems[{mi}], *w{mi}_{wi}, {lanes}, {stride}, "
                f"{la}, {ld}, {mem.depth}, {msk})")
    tick_body = (tick_emit.lines + commit_lines) or ["    pass"]

    source = "\n".join(
        [f"# batch-compiled netlist {netlist.name!r}: "
         f"lanes={lanes}, stride={stride}",
         "def settle(v, mems):"]
        + settle_body
        + ["", "def tick(v, mems):"]
        + tick_body
    )
    namespace: dict[str, object] = {
        "_K": tuple(pool.objs),
        "_pl1": _pl1,
        "_pl2": _pl2,
        "_mrd": _mrd,
        "_mwr": _mwr,
    }
    exec(compile(source, f"<batch netlist {netlist.name}>", "exec"), namespace)
    if obs_trace.enabled():
        n_lines = source.count("\n") + 1
        obs_metrics.inc("sim.batch.netlists")
        obs_metrics.observe("sim.batch.source_lines", n_lines)
        span.set(signals=len(signals), lanes=lanes, stride=stride,
                 source_lines=n_lines)
    return BatchCompiled(
        netlist=netlist,
        lanes=lanes,
        stride=stride,
        ones=sum(1 << (i * stride) for i in range(lanes)),
        index_of=index_of,
        mem_index_of=mem_index_of,
        settle=namespace["settle"],
        tick=namespace["tick"],
        source=source,
    )


def scalar_adapter(netlist: Netlist) -> CompiledNetlist:
    """A one-lane batch compilation shaped like a ``CompiledNetlist``.

    With ``lanes=1`` the packed representation of a value is the value
    itself, so the generated functions operate directly on a scalar
    :class:`~repro.sim.Simulator`'s state.  Only the memory layout differs
    (the batch code expects one backing list per lane); the wrappers adapt
    it without copying — the inner lists are shared, so writes land in the
    simulator's own memories.
    """
    compiled = compile_batch(netlist, lanes=1)
    bsettle, btick = compiled.settle, compiled.tick

    def settle(v, mems):
        bsettle(v, [[m] for m in mems])

    def tick(v, mems):
        btick(v, [[m] for m in mems])

    return CompiledNetlist(
        netlist=netlist,
        index_of=compiled.index_of,
        mem_index_of=compiled.mem_index_of,
        settle=settle,
        tick=tick,
        source=compiled.source,
    )


# ----------------------------------------------------------------------
# multi-lane simulation
# ----------------------------------------------------------------------

class BatchSimulator:
    """Lockstep B-lane simulator: lane ``i`` is an independent design copy.

    The simulation contract matches :class:`~repro.sim.Simulator` (poke,
    implicit settle, observe, :meth:`step`), except pokes and peeks address
    either one lane, all lanes, or the raw packed value.  Settling is lazy:
    a driver that pokes, peeks, and steps once per cycle pays exactly one
    combinational pass per clock for all ``lanes`` instances.
    """

    def __init__(self, design: Module | Netlist, lanes: int = 8) -> None:
        if isinstance(design, Module):
            design = elaborate(design)
        self.netlist = design
        self.lanes = lanes
        self._compiled = compile_batch(design, lanes)
        self.stride = self._compiled.stride
        self._ones = self._compiled.ones
        self._index_of = self._compiled.index_of
        self._mem_index_of = self._compiled.mem_index_of
        self._by_name = {sig.name: sig for sig in self._index_of}
        self._inputs = set(design.inputs)
        self._values: list[int] = [0] * len(self._index_of)
        self._mems: list[list[list[int]]] = []
        self._dirty = True
        self.cycles = 0
        self.settles = 0   # lifetime count of combinational settle passes
        if obs_trace.enabled():
            obs_metrics.inc("sim.instances")
            obs_metrics.inc("sim.engine.batch")
            obs_metrics.observe("sim.batch.lanes", lanes)
        self.reset()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Synchronous reset of every lane: registers and memories to init."""
        for i in range(len(self._values)):
            self._values[i] = 0
        for reg in self.netlist.registers:
            w = reg.signal.width
            init = reg.init & ((1 << w) - 1)
            self._values[self._index_of[reg.signal]] = init * self._ones
        self._mems = []
        for mem in self.netlist.memories:
            words = list(mem.init[: mem.depth])
            words += [0] * (mem.depth - len(words))
            msk = (1 << mem.width) - 1
            base = [word & msk for word in words]
            self._mems.append([list(base) for _ in range(self.lanes)])
        self.cycles = 0
        self._dirty = True

    def _resolve(self, signal: Signal | str) -> Signal:
        if isinstance(signal, str):
            resolved = self._by_name.get(signal)
            if resolved is None:
                raise SimulationError(f"no signal named {signal!r}")
            return resolved
        if signal not in self._index_of:
            raise SimulationError(f"signal {signal.name!r} is not in this netlist")
        return signal

    def index_of(self, signal: Signal | str) -> int:
        """The ``values`` index of a signal (for packed fast paths)."""
        return self._index_of[self._resolve(signal)]

    # ------------------------------------------------------------------
    # poke / peek
    # ------------------------------------------------------------------
    def _check_input(self, sig: Signal) -> None:
        if sig not in self._inputs:
            raise SimulationError(f"cannot poke non-input signal {sig.name!r}")

    def poke_all(self, signal: Signal | str, value: int) -> None:
        """Drive the same value into an input on every lane."""
        sig = self._resolve(signal)
        self._check_input(sig)
        masked = value & ((1 << sig.width) - 1)
        self._values[self._index_of[sig]] = masked * self._ones
        self._dirty = True

    def poke_lanes(self, signal: Signal | str, values: Sequence[int]) -> None:
        """Drive one value per lane into an input."""
        sig = self._resolve(signal)
        self._check_input(sig)
        if len(values) != self.lanes:
            raise SimulationError(
                f"poke_lanes {sig.name!r}: expected {self.lanes} values, "
                f"got {len(values)}")
        msk = (1 << sig.width) - 1
        packed = 0
        for i, value in enumerate(values):
            packed |= (value & msk) << (i * self.stride)
        self._values[self._index_of[sig]] = packed
        self._dirty = True

    def poke_packed(self, signal: Signal | str, packed: int) -> None:
        """Trusted fast path: drive a pre-packed value (lanes pre-masked)."""
        sig = self._resolve(signal)
        self._check_input(sig)
        self._values[self._index_of[sig]] = packed
        self._dirty = True

    def settle(self) -> None:
        """Propagate combinational logic if any input changed."""
        if not self._dirty:
            return
        self._compiled.settle(self._values, self._mems)
        self._dirty = False
        self.settles += 1

    def peek_packed(self, signal: Signal | str) -> int:
        """The settled packed value of any signal."""
        sig = self._resolve(signal)
        self.settle()
        return self._values[self._index_of[sig]]

    def peek_lanes(self, signal: Signal | str) -> list[int]:
        """The settled per-lane values of any signal."""
        sig = self._resolve(signal)
        packed = self.peek_packed(sig)
        msk = (1 << sig.width) - 1
        return [(packed >> (i * self.stride)) & msk for i in range(self.lanes)]

    def peek_lane(self, signal: Signal | str, lane: int) -> int:
        """One lane's settled value of any signal."""
        sig = self._resolve(signal)
        packed = self.peek_packed(sig)
        return (packed >> (lane * self.stride)) & ((1 << sig.width) - 1)

    # ------------------------------------------------------------------
    def step(self, cycles: int = 1) -> None:
        """Advance all lanes by ``cycles`` clock edges.

        Like :meth:`Simulator.step` each edge charges one cycle against an
        armed :mod:`repro.resilience.budget` — one clock, however many
        lanes it advances.  The post-tick settle is lazy (performed at the
        next peek), so a poke/peek/step driver loop settles once per cycle.
        """
        charge = res_budget.charge
        for _ in range(cycles):
            charge()
            self.settle()
            self._compiled.tick(self._values, self._mems)
            self._dirty = True
            self.cycles += 1

    # ------------------------------------------------------------------
    @property
    def compiled_source(self) -> str:
        """The generated lane-packed Python source (debugging aid)."""
        return self._compiled.source


# ----------------------------------------------------------------------
# lockstep block streaming
# ----------------------------------------------------------------------

class BatchStreamRunner:
    """Streams N input blocks through B lockstep copies of a wrapped design.

    Blocks are split into contiguous per-lane chunks and each lane streams
    its chunk through its own copy of the AXI wrapper, all lanes advancing
    on one shared clock: one lane-packed settle evaluates every instance.
    Lanes that exhaust their input drive ``TVALID`` low and idle until the
    stragglers finish; outputs reassemble in the original block order.

    This is the data-parallel engine behind ``engine="batch"`` on the
    serving tier — it trades the scalar harness's cycle-accurate timing
    measurement (every lane has its own clock history) for one settle pass
    per clock across the whole batch.
    """

    def __init__(self, design_top: Module | Netlist, spec,
                 lanes: int = 8) -> None:
        from ..axis.wrapper import AxisPorts

        self.spec = spec
        self.sim = BatchSimulator(design_top, lanes)
        self.lanes = lanes
        self._ix = {
            name: self.sim.index_of(name)
            for name in (AxisPorts.S_TDATA, AxisPorts.S_TVALID,
                         AxisPorts.S_TLAST, AxisPorts.M_TREADY,
                         AxisPorts.S_TREADY, AxisPorts.M_TVALID,
                         AxisPorts.M_TDATA, AxisPorts.M_TLAST,
                         AxisPorts.ERROR)
        }

    # ------------------------------------------------------------------
    def run_blocks(self, blocks, signed_output: bool = True,
                   timeout: int | None = None) -> list[list[list[int]]]:
        """Stream ``blocks`` through the lanes and collect them in order."""
        with obs_trace.span("sim.batch.stream", blocks=len(blocks),
                            lanes=self.lanes) as span:
            outputs, cycles = self._run(blocks, signed_output, timeout)
            if obs_trace.enabled():
                obs_metrics.inc("sim.batch.runs")
                obs_metrics.inc("sim.batch.cycles", cycles)
                obs_metrics.inc("sim.batch.blocks", len(blocks))
                span.set(cycles=cycles,
                         settles=self.sim.settles)
            return outputs

    def _run(self, blocks, signed_output: bool, timeout: int | None):
        from ..axis.wrapper import AxisPorts

        sim, spec = self.sim, self.spec
        rows, cols = spec.rows, spec.cols
        lanes, stride = self.lanes, sim.stride
        in_width = spec.in_width
        in_mask = (1 << in_width) - 1

        chunk_size = -(-len(blocks) // lanes) if blocks else 0
        chunks = [blocks[i * chunk_size:(i + 1) * chunk_size]
                  for i in range(lanes)]
        lane_beats: list[list[tuple[int, bool]]] = []
        for chunk in chunks:
            beats: list[tuple[int, bool]] = []
            for matrix in chunk:
                if len(matrix) != rows:
                    raise SimulationError(f"matrix must have {rows} rows",
                                          phase="sim.batch.stream")
                for r, row in enumerate(matrix):
                    # Inline pack_row (element 0 in the LSBs): building the
                    # word beats a per-element helper call at these volumes.
                    word = 0
                    for v in reversed(row):
                        word = (word << in_width) | (v & in_mask)
                    beats.append((word, r == rows - 1))
            lane_beats.append(beats)
        expected = [len(chunk) * rows for chunk in chunks]
        if timeout is None:
            timeout = 64 * (max((len(b) for b in lane_beats), default=0) + 64)

        sim.reset()
        values = sim._values
        ix = self._ix
        i_in_data = ix[AxisPorts.S_TDATA]
        i_in_valid = ix[AxisPorts.S_TVALID]
        i_in_last = ix[AxisPorts.S_TLAST]
        i_out_ready = ix[AxisPorts.M_TREADY]
        i_in_ready = ix[AxisPorts.S_TREADY]
        i_out_valid = ix[AxisPorts.M_TVALID]
        i_out_data = ix[AxisPorts.M_TDATA]
        i_out_last = ix[AxisPorts.M_TLAST]
        out_row_mask = (1 << spec.out_row_bits) - 1

        next_beat = [0] * lanes
        out_words: list[list[int]] = [[] for _ in range(lanes)]
        remaining = sum(expected)
        cycle = 0
        lane_range = range(lanes)

        values[i_out_ready] = sim._ones  # sink always ready on every lane
        while remaining:
            if cycle > timeout:
                self._raise_timeout(cycle, next_beat, lane_beats,
                                    out_words, expected)
            tv = td = tl = 0
            for i in lane_range:
                beats = lane_beats[i]
                nb = next_beat[i]
                if nb < len(beats):
                    word, last = beats[nb]
                    sh = i * stride
                    tv |= 1 << sh
                    td |= word << sh
                    if last:
                        tl |= 1 << sh
            values[i_in_valid] = tv
            values[i_in_data] = td
            values[i_in_last] = tl
            sim._dirty = True
            sim.settle()

            accept = tv & values[i_in_ready]
            if accept:
                for i in lane_range:
                    if (accept >> (i * stride)) & 1:
                        next_beat[i] += 1
            out_valid = values[i_out_valid]
            if out_valid:
                out_data = values[i_out_data]
                out_last = values[i_out_last]
                for i in lane_range:
                    sh = i * stride
                    if (out_valid >> sh) & 1:
                        words = out_words[i]
                        if len(words) >= expected[i]:
                            raise ProtocolError(
                                f"lane {i} produced an unexpected output "
                                f"beat at cycle {cycle}")
                        expect_last = (len(words) % rows) == rows - 1
                        if bool((out_last >> sh) & 1) != expect_last:
                            raise ProtocolError(
                                f"TLAST misaligned on lane {i} at cycle "
                                f"{cycle}")
                        words.append((out_data >> sh) & out_row_mask)
                        remaining -= 1
            sim.step()
            cycle += 1

        if sim.peek_packed(AxisPorts.ERROR):
            raise ProtocolError(
                f"wrapper raised sticky error by cycle {cycle}")

        ow = spec.out_width
        omask = (1 << ow) - 1
        sign = 1 << (ow - 1) if signed_output else 0
        shifts = [c * ow for c in range(cols)]
        outputs: list[list[list[int]]] = []
        for i in lane_range:
            words = out_words[i]
            for m in range(expected[i] // rows):
                block = []
                for r in range(rows):
                    word = words[m * rows + r]
                    # Inline unpack_row with branchless sign extension.
                    block.append([
                        ((word >> sh) & omask ^ sign) - sign
                        for sh in shifts
                    ])
                outputs.append(block)
        return outputs, cycle

    def _raise_timeout(self, cycle, next_beat, lane_beats, out_words,
                       expected):
        from ..axis.wrapper import AxisPorts

        # A stuck lane usually means the wrapper latched its sticky error;
        # surface that as the (more specific) protocol failure.
        if self.sim.peek_packed(AxisPorts.ERROR):
            raise ProtocolError(
                f"wrapper raised sticky error by cycle {cycle}")
        obs_trace.event("sim.batch.timeout", cycles=cycle,
                        beats_in=sum(next_beat),
                        beats_out=sum(len(w) for w in out_words),
                        expected_out=sum(expected))
        obs_metrics.inc("sim.stream.timeouts")
        raise HarnessTimeout(
            f"batch stream run timed out at cycle {cycle} "
            f"({sum(next_beat)}/{sum(len(b) for b in lane_beats)} beats in, "
            f"{sum(len(w) for w in out_words)}/{sum(expected)} beats out)",
            phase="sim.batch.stream", cycles=cycle,
            beats_in=sum(next_beat),
            beats_out=sum(len(w) for w in out_words),
        )
