"""Netlist-to-Python compilation for the fast simulator.

The compiled evaluator turns the levelized netlist into two plain Python
functions — ``settle`` (combinational propagation) and ``tick`` (register
and memory commit) — operating on a flat list of unsigned integers.

Expression trees built by frontends are frequently DAGs (the same node
object reused in many places).  Naive code emission would duplicate shared
subtrees exponentially, so a common-subexpression pass hoists every node
referenced more than once into a local temporary first.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.bits import to_signed
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..rtl.elaborate import Netlist
from ..rtl.ir import Const, Expr, MemRead, Ref, Signal, emit_py
from ..rtl.module import Memory

__all__ = ["CompiledNetlist", "compile_netlist"]


@dataclass(eq=False)
class CompiledNetlist:
    """The executable form of a netlist.

    ``settle(values, mems)`` propagates combinational logic in place;
    ``tick(values, mems)`` samples register/memory inputs and commits them
    (callers must settle first and settle again afterwards).
    """

    netlist: Netlist
    index_of: dict[Signal, int]
    mem_index_of: dict[Memory, int]
    settle: object  # callable(values: list[int], mems: list[list[int]])
    tick: object    # callable(values: list[int], mems: list[list[int]])
    source: str     # generated Python, kept for debugging and tests


class _Emitter:
    """Shared-subexpression-aware statement emitter."""

    def __init__(self, index_of: dict[Signal, int], mem_index_of: dict[Memory, int]) -> None:
        self._index_of = index_of
        self._mem_index_of = mem_index_of
        self._counts: dict[int, int] = {}
        self._nodes: dict[int, Expr] = {}
        self._temp_of: dict[int, str] = {}
        self._lines: list[str] = []
        self._next_temp = 0

    # -- analysis ------------------------------------------------------
    def count(self, expr: Expr) -> None:
        """Count references to every node (children of a node counted once)."""
        key = id(expr)
        self._counts[key] = self._counts.get(key, 0) + 1
        if self._counts[key] > 1:
            return
        self._nodes[key] = expr
        for child in _children(expr):
            self.count(child)

    # -- emission ------------------------------------------------------
    def _ref_of(self, sig: Signal) -> str:
        return f"v[{self._index_of[sig]}]"

    def _mem_of(self, mem: Memory) -> str:
        return f"mems[{self._mem_index_of[mem]}]"

    def code_for(self, expr: Expr) -> str:
        """Python expression string for ``expr``, hoisting shared nodes."""
        key = id(expr)
        if key in self._temp_of:
            return self._temp_of[key]
        if self._counts.get(key, 0) > 1 and not isinstance(expr, (Const, Ref)):
            # Hoist: emit children first (recursively), then a temp binding.
            inner = emit_py(expr, self._ref_of, self._mem_of) \
                if not _has_shared_children(expr, self) else self._emit_with_temps(expr)
            temp = f"t{self._next_temp}"
            self._next_temp += 1
            self._lines.append(f"    {temp} = {inner}")
            self._temp_of[key] = temp
            return temp
        if _has_shared_children(expr, self):
            return self._emit_with_temps(expr)
        return emit_py(expr, self._ref_of, self._mem_of)

    def _emit_with_temps(self, expr: Expr) -> str:
        """Emit ``expr`` where some children are hoisted temporaries."""
        # Hoist shared children first, then emit this node with a reader
        # that intercepts them.  emit_py only sees leaf signals, so we wrap
        # the whole recursion manually for structured nodes.
        parts = {id(child): self.code_for(child) for child in _children(expr)}

        # Re-emit this single node with children replaced by their code.
        return _emit_node(expr, parts, self._ref_of, self._mem_of)

    def statement(self, line: str) -> None:
        self._lines.append(f"    {line}")

    @property
    def lines(self) -> list[str]:
        return self._lines


def _children(expr: Expr) -> tuple[Expr, ...]:
    from ..rtl.ir import BinOp, Cat, Ext, Mux, Slice, UnOp

    if isinstance(expr, BinOp):
        return (expr.a, expr.b)
    if isinstance(expr, UnOp):
        return (expr.a,)
    if isinstance(expr, Mux):
        return (expr.sel, expr.if_true, expr.if_false)
    if isinstance(expr, Cat):
        return expr.parts
    if isinstance(expr, (Slice, Ext)):
        return (expr.a,)
    if isinstance(expr, MemRead):
        return (expr.addr,)
    return ()


def _has_shared_children(expr: Expr, emitter: _Emitter) -> bool:
    """True when any transitive child is (or contains) a hoisted node."""
    for child in _children(expr):
        key = id(child)
        if emitter._counts.get(key, 0) > 1 and not isinstance(child, (Const, Ref)):
            return True
        if _has_shared_children(child, emitter):
            return True
    return False


def _emit_node(
    expr: Expr,
    child_code: dict[int, str],
    ref_of,
    mem_of,
) -> str:
    """Emit one node given pre-rendered code for its children.

    We reuse :func:`emit_py` by substituting placeholder signals: build a
    shallow clone where each structured child is replaced by a fake Ref and
    map those fake signals to the rendered code.
    """
    from ..rtl.ir import BinOp, Cat, Ext, Mux, Slice, UnOp

    fakes: dict[Signal, str] = {}

    def wrap(child: Expr) -> Expr:
        code = child_code[id(child)]
        fake = Signal(f"__tmp{len(fakes)}", child.width)
        fakes[fake] = code
        return Ref(fake)

    if isinstance(expr, BinOp):
        clone: Expr = BinOp(expr.kind, wrap(expr.a), wrap(expr.b))
    elif isinstance(expr, UnOp):
        clone = UnOp(expr.kind, wrap(expr.a))
    elif isinstance(expr, Mux):
        clone = Mux(wrap(expr.sel), wrap(expr.if_true), wrap(expr.if_false))
    elif isinstance(expr, Cat):
        clone = Cat(tuple(wrap(p) for p in expr.parts))
    elif isinstance(expr, Slice):
        clone = Slice(wrap(expr.a), expr.hi, expr.lo)
    elif isinstance(expr, Ext):
        clone = Ext(wrap(expr.a), expr.width, expr.signed)
    elif isinstance(expr, MemRead):
        clone = MemRead(expr.memory, wrap(expr.addr))
    else:  # Const / Ref have no children
        return emit_py(expr, ref_of, mem_of)

    def reader(sig: Signal) -> str:
        if sig in fakes:
            return fakes[sig]
        return ref_of(sig)

    return emit_py(clone, reader, mem_of)


def compile_netlist(netlist: Netlist) -> CompiledNetlist:
    """Compile ``netlist`` into fast ``settle``/``tick`` functions."""
    with obs_trace.span("sim.compile", netlist=netlist.name) as span:
        return _compile_traced(netlist, span)


def _compile_traced(netlist: Netlist, span) -> CompiledNetlist:
    signals = netlist.signals()
    index_of = {sig: i for i, sig in enumerate(signals)}
    mem_index_of = {mem: i for i, mem in enumerate(netlist.memories)}
    ordered = netlist.comb_order()

    # -- settle --------------------------------------------------------
    settle_emit = _Emitter(index_of, mem_index_of)
    for _sig, expr in ordered:
        settle_emit.count(expr)
    settle_body: list[str] = []
    for sig, expr in ordered:
        code = settle_emit.code_for(expr)
        settle_emit.statement(f"v[{index_of[sig]}] = {code}")
    settle_body = settle_emit.lines or ["    pass"]

    # -- tick ----------------------------------------------------------
    tick_emit = _Emitter(index_of, mem_index_of)
    for reg in netlist.registers:
        tick_emit.count(reg.next)
        if reg.en is not None:
            tick_emit.count(reg.en)
    for mem in netlist.memories:
        for write in mem.writes:
            tick_emit.count(write.en)
            tick_emit.count(write.addr)
            tick_emit.count(write.data)

    commit_lines: list[str] = []
    for i, reg in enumerate(netlist.registers):
        next_code = tick_emit.code_for(reg.next)
        if reg.en is None:
            tick_emit.statement(f"n{i} = {next_code}")
            commit_lines.append(f"    v[{index_of[reg.signal]}] = n{i}")
        else:
            en_code = tick_emit.code_for(reg.en)
            idx = index_of[reg.signal]
            tick_emit.statement(f"n{i} = ({next_code}) if ({en_code}) else v[{idx}]")
            commit_lines.append(f"    v[{idx}] = n{i}")
    for mi, mem in enumerate(netlist.memories):
        for wi, write in enumerate(mem.writes):
            en_code = tick_emit.code_for(write.en)
            addr_code = tick_emit.code_for(write.addr)
            data_code = tick_emit.code_for(write.data)
            tick_emit.statement(
                f"w{mi}_{wi} = (({addr_code}) % {mem.depth}, "
                f"({data_code}) & {(1 << mem.width) - 1}) if ({en_code}) else None"
            )
            commit_lines.append(f"    if w{mi}_{wi} is not None:")
            commit_lines.append(
                f"        mems[{mi}][w{mi}_{wi}[0]] = w{mi}_{wi}[1]"
            )
    tick_body = tick_emit.lines + commit_lines or ["    pass"]

    source = "\n".join(
        ["def settle(v, mems):"]
        + settle_body
        + ["", "def tick(v, mems):"]
        + (tick_body or ["    pass"])
    )
    namespace: dict[str, object] = {"_sx": to_signed}
    exec(compile(source, f"<netlist {netlist.name}>", "exec"), namespace)
    if obs_trace.enabled():
        n_lines = source.count("\n") + 1
        obs_metrics.inc("sim.compile.netlists")
        obs_metrics.observe("sim.compile.source_lines", n_lines)
        span.set(signals=len(signals), source_lines=n_lines)
    return CompiledNetlist(
        netlist=netlist,
        index_of=index_of,
        mem_index_of=mem_index_of,
        settle=namespace["settle"],
        tick=namespace["tick"],
        source=source,
    )
