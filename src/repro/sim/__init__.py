"""Cycle-accurate simulation of elaborated netlists."""

from .compile import CompiledNetlist, compile_netlist
from .simulator import Simulator
from .vcd import VcdTracer

__all__ = ["Simulator", "VcdTracer", "CompiledNetlist", "compile_netlist"]
