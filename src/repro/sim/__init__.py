"""Cycle-accurate simulation of elaborated netlists."""

from .batch import (
    BatchCompiled,
    BatchSimulator,
    BatchStreamRunner,
    compile_batch,
    scalar_adapter,
)
from .compile import CompiledNetlist, compile_netlist
from .simulator import Simulator
from .vcd import VcdTracer

__all__ = [
    "Simulator",
    "VcdTracer",
    "CompiledNetlist",
    "compile_netlist",
    "BatchCompiled",
    "BatchSimulator",
    "BatchStreamRunner",
    "compile_batch",
    "scalar_adapter",
]
