"""Minimal VCD (value change dump) waveform writer.

Attach a :class:`VcdTracer` to a :class:`~repro.sim.simulator.Simulator` to
record selected signals each clock cycle; the output opens in GTKWave or any
other VCD viewer.  The timescale maps one clock cycle to 1 ns.
"""

from __future__ import annotations

import io
from typing import Sequence

from ..rtl.ir import Signal

__all__ = ["VcdTracer"]

_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Compact VCD identifier for the index-th signal."""
    chars = []
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_ID_CHARS))
        chars.append(_ID_CHARS[rem])
    return "".join(chars)


class VcdTracer:
    """Records signal values per cycle and renders a VCD document."""

    def __init__(self, simulator, signals: Sequence[Signal | str] | None = None) -> None:
        self._sim = simulator
        if signals is None:
            resolved = list(simulator.netlist.inputs) + list(simulator.netlist.outputs)
        else:
            resolved = [simulator._resolve(sig) for sig in signals]
        self._signals = resolved
        self._ids = {sig: _identifier(i) for i, sig in enumerate(resolved)}
        self._history: list[tuple[int, dict[Signal, int]]] = []
        self._last: dict[Signal, int] = {}
        simulator.add_watcher(self._on_edge)
        self._capture(0)

    def _capture(self, time: int) -> None:
        changes: dict[Signal, int] = {}
        for sig in self._signals:
            value = self._sim.peek_int(sig)
            if self._last.get(sig) != value:
                changes[sig] = value
                self._last[sig] = value
        if changes or time == 0:
            self._history.append((time, changes))

    def _on_edge(self, cycle: int) -> None:
        self._capture(cycle)

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Render the VCD document as a string."""
        out = io.StringIO()
        out.write("$date repro simulation $end\n")
        out.write("$version repro vcd writer $end\n")
        out.write("$timescale 1ns $end\n")
        out.write(f"$scope module {self._sim.netlist.name} $end\n")
        for sig in self._signals:
            ident = self._ids[sig]
            name = sig.name.replace(".", "_")
            out.write(f"$var wire {sig.width} {ident} {name} $end\n")
        out.write("$upscope $end\n$enddefinitions $end\n")
        for time, changes in self._history:
            out.write(f"#{time}\n")
            for sig, value in changes.items():
                ident = self._ids[sig]
                if sig.width == 1:
                    out.write(f"{value}{ident}\n")
                else:
                    out.write(f"b{value:b} {ident}\n")
        return out.getvalue()

    def save(self, path: str) -> None:
        """Write the VCD document to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render())

    @property
    def history(self) -> list[tuple[int, dict[Signal, int]]]:
        return self._history
