"""Netlist-level fault injection: stuck-at-0/1 and bit-flip mutations.

A fault site is one bit of one driven signal in a flat
:class:`~repro.rtl.elaborate.Netlist` — either a combinational assignment
target or a register.  Injection wraps the site's driving expression with a
masking operation::

    stuck-at-0   expr & ~(1 << bit)
    stuck-at-1   expr |  (1 << bit)
    bit-flip     expr ^  (1 << bit)

and returns a *new* netlist sharing every untouched node with the original,
so building thousands of mutants costs one list copy each.  The mutation
campaign (:mod:`repro.resilience.campaign`) runs each mutant through
:func:`~repro.eval.verify.verify_design` to measure how reliably the
IEEE 1180-style compliance checker flags broken hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import EvaluationError
from ..rtl.elaborate import FlatRegister, Netlist
from ..rtl.ir import BinOp, BinOpKind, Const, Expr

__all__ = ["MODES", "FaultSite", "enumerate_sites", "apply_fault", "inject",
           "output_data_sites"]

MODES = ("stuck0", "stuck1", "flip")

_MODE_OP = {
    "stuck0": BinOpKind.AND,
    "stuck1": BinOpKind.OR,
    "flip": BinOpKind.XOR,
}


@dataclass(frozen=True)
class FaultSite:
    """One mutable bit in a flat netlist."""

    kind: str       # "assign" | "register"
    index: int      # position in netlist.assigns / netlist.registers
    bit: int
    signal: str     # flat signal name, for reports

    def describe(self, mode: str) -> str:
        return f"{mode}@{self.signal}[{self.bit}]"


def enumerate_sites(netlist: Netlist) -> list[FaultSite]:
    """Every (driven signal, bit) pair, assigns first, in netlist order."""
    sites: list[FaultSite] = []
    for index, (sig, _expr) in enumerate(netlist.assigns):
        for bit in range(sig.width):
            sites.append(FaultSite("assign", index, bit, sig.name))
    for index, reg in enumerate(netlist.registers):
        for bit in range(reg.signal.width):
            sites.append(FaultSite("register", index, bit, reg.signal.name))
    return sites


def output_data_sites(netlist: Netlist) -> list[FaultSite]:
    """Sites driving multi-bit output ports (guaranteed-observable faults).

    Used by the CLI smoke: a bit-flip on a data output must be caught by
    the compliance checker, so these make a deterministic self-test.
    """
    output_names = {sig.name for sig in netlist.outputs if sig.width > 1}
    return [site for site in enumerate_sites(netlist)
            if site.signal in output_names]


def apply_fault(expr: Expr, mode: str, bit: int, width: int) -> Expr:
    """Wrap ``expr`` so that ``bit`` is stuck or flipped."""
    if mode not in _MODE_OP:
        raise EvaluationError(f"unknown fault mode {mode!r}")
    if not 0 <= bit < width:
        raise EvaluationError(f"fault bit {bit} out of range for width {width}")
    mask = 1 << bit
    if mode == "stuck0":
        mask = ~mask  # Const masks to width
    return BinOp(_MODE_OP[mode], expr, Const(mask, width))


def inject(netlist: Netlist, site: FaultSite, mode: str) -> Netlist:
    """A copy of ``netlist`` with one fault injected at ``site``.

    Only the mutated entry is fresh; all other expression DAGs, memories,
    and port signals are shared with the original netlist.
    """
    assigns = list(netlist.assigns)
    registers = list(netlist.registers)
    if site.kind == "assign":
        sig, expr = assigns[site.index]
        assigns[site.index] = (sig, apply_fault(expr, mode, site.bit, sig.width))
    elif site.kind == "register":
        reg = registers[site.index]
        registers[site.index] = FlatRegister(
            reg.signal,
            apply_fault(reg.next, mode, site.bit, reg.signal.width),
            reg.init,
            reg.en,
        )
    else:
        raise EvaluationError(f"unknown fault site kind {site.kind!r}")
    return Netlist(
        name=f"{netlist.name}__{site.describe(mode)}",
        inputs=list(netlist.inputs),
        outputs=list(netlist.outputs),
        assigns=assigns,
        registers=registers,
        memories=list(netlist.memories),
    )
