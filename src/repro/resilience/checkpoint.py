"""JSONL checkpoint store for interruptible, resumable sweeps.

Each completed design measurement (or recorded failure) is appended as one
JSON line and flushed immediately, so a sweep killed at any point loses at
most the design in flight.  Resuming replays the stored records instead of
re-measuring, which makes an interrupted-then-resumed ``table2``/``fig1``
run byte-identical to an uninterrupted one: every number in the rendered
output round-trips exactly through JSON (Python floats serialize via
``repr`` and parse back to the same bits).

Record schema (one object per line)::

    {"schema": 1, "design": "<name>", "status": "ok"|"failed",
     "measured": {…Measured fields…} | null,
     "error": {type, message, design, phase, context} | null,
     "attempts": N, "degraded": bool}
"""

from __future__ import annotations

import json
import os

from ..eval.measure import Measured

__all__ = ["SCHEMA_VERSION", "Checkpoint", "measured_to_dict",
           "measured_from_dict"]

SCHEMA_VERSION = 1


def measured_to_dict(measured: Measured) -> dict:
    """Flatten a :class:`Measured` into JSON-ready primitives."""
    return measured.to_dict()


def measured_from_dict(data: dict) -> Measured:
    """Rebuild a :class:`Measured` from its checkpoint form."""
    return Measured.from_dict(data)


class Checkpoint:
    """Append-only JSONL store of per-design sweep results.

    ``resume=True`` loads any existing records before appending;
    ``resume=False`` truncates, starting a fresh sweep.
    """

    def __init__(self, path: str | os.PathLike, resume: bool = False) -> None:
        self.path = os.fspath(path)
        self._records: dict[str, dict] = {}
        if resume:
            self._load()
        else:
            # Truncate: a fresh sweep must not inherit stale results.
            with open(self.path, "w", encoding="utf-8"):
                pass

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                if record.get("schema") != SCHEMA_VERSION:
                    continue
                self._records[record["design"]] = record

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, design: str) -> bool:
        return design in self._records

    def names(self) -> list[str]:
        """Design names with stored records (used to skip resumed work)."""
        return list(self._records)

    def get(self, design: str) -> dict | None:
        return self._records.get(design)

    def record(self, design: str, *, status: str,
               measured: Measured | None = None,
               error: dict | None = None,
               attempts: int = 1, degraded: bool = False) -> dict:
        """Append one result line and flush it to disk immediately."""
        entry = {
            "schema": SCHEMA_VERSION,
            "design": design,
            "status": status,
            "measured": None if measured is None else measured_to_dict(measured),
            "error": error,
            "attempts": attempts,
            "degraded": degraded,
        }
        self._records[design] = entry
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        return entry
