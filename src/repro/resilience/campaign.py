"""Mutation-style fault-injection campaign against the compliance checker.

The paper's evaluation assumes ``verify_design`` (the IEEE 1180-1990-style
bit-exactness gate) would flag a broken design.  This campaign *measures*
that: inject single stuck-at/bit-flip faults into a design's netlist, run
each mutant through the same verification path the sweep uses, and report
the detection rate.

A mutant counts as detected when verification observes *anything* wrong:

* ``mismatch``  — outputs differ from the Chen-Wang golden model;
* ``protocol``  — the AXI-Stream monitor caught a handshake violation;
* ``timeout``   — the stream hung (HarnessTimeout);
* ``budget``    — the cycle budget expired (hung before the timeout);
* ``error``     — any other typed ReproError escaped the run;
* ``deep``      — caught only by the escalation pass (below).

Verification is tiered, exactly like the standard's own procedure (which
prescribes 10,000 blocks per condition precisely because short streams
miss data-dependent faults):

1. the *gate* pass — the directed impulse/extreme battery plus a short
   random stream from each of the six IEEE 1180 input conditions;
2. the *escalation* pass for gate survivors — 4× the random blocks and a
   second generator seed, still plain ``verify_design``.

Mutants neither pass flags are documented as *equivalent-under-test*
(the fault is masked by the logic — e.g. stuck-at-0 on a bit that is
never 1) and excluded from the detection denominator.  The acceptance bar
is ≥95% detection of non-equivalent single-fault mutants;
``strict_rate`` additionally reports gate-only detection, the honest
strength of the short compliance stream the sweeps run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core.errors import (
    BudgetExceeded,
    HarnessTimeout,
    ProtocolError,
    ReproError,
)
from ..eval.verify import verify_design
from ..frontends.base import Design
from ..idct.ieee1180 import STANDARD_CONDITIONS
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..rtl import elaborate
from ..sim import Simulator
from . import budget as res_budget
from .faults import MODES, FaultSite, enumerate_sites, inject

__all__ = ["MutantOutcome", "CampaignReport", "run_campaign", "run_mutant",
           "directed_matrices"]


def directed_matrices() -> list[list[list[int]]]:
    """The campaign's directed stimulus battery.

    The IDCT is linear, so single-coefficient impulse blocks drive each
    multiplier/adder chain across its dynamic range one basis function at
    a time — exactly the stimulus that exposes a stuck or flipped bit in
    an arithmetic path, which uniform random blocks can take thousands of
    samples to excite.  The battery is the all-zero block (an IEEE 1180
    criterion of its own), all-extreme blocks, and a ±extreme impulse at
    every coefficient position: 131 blocks, milliseconds of streaming.
    """
    zero = [[0] * 8 for _ in range(8)]
    blocks = [zero,
              [[255] * 8 for _ in range(8)],
              [[-256] * 8 for _ in range(8)]]
    for value in (255, -256):
        for row in range(8):
            for col in range(8):
                block = [[0] * 8 for _ in range(8)]
                block[row][col] = value
                blocks.append(block)
    return blocks


@dataclass(frozen=True)
class MutantOutcome:
    """One injected fault and how verification responded."""

    site: FaultSite
    mode: str
    verdict: str   # mismatch|protocol|timeout|budget|error|deep|equivalent

    @property
    def detected(self) -> bool:
        return self.verdict != "equivalent"

    @property
    def gate_detected(self) -> bool:
        """Detected by the gate pass alone (no escalation needed)."""
        return self.detected and self.verdict != "deep"

    def describe(self) -> str:
        return f"{self.site.describe(self.mode)}: {self.verdict}"


@dataclass
class CampaignReport:
    """Aggregate campaign result."""

    design: str
    outcomes: list[MutantOutcome] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def detected(self) -> int:
        return sum(1 for o in self.outcomes if o.detected)

    @property
    def equivalent(self) -> list[MutantOutcome]:
        return [o for o in self.outcomes if o.verdict == "equivalent"]

    @property
    def escalated(self) -> list[MutantOutcome]:
        """Mutants only the escalation pass caught (verdict ``deep``)."""
        return [o for o in self.outcomes if o.verdict == "deep"]

    @property
    def detection_rate(self) -> float:
        """Detected fraction of non-equivalent mutants (1.0 when empty)."""
        effective = self.total - len(self.equivalent)
        if effective <= 0:
            return 1.0
        return self.detected / effective

    @property
    def strict_rate(self) -> float:
        """Gate-pass-only detection of non-equivalent mutants."""
        effective = self.total - len(self.equivalent)
        if effective <= 0:
            return 1.0
        return sum(1 for o in self.outcomes if o.gate_detected) / effective

    def by_verdict(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.verdict] = counts.get(outcome.verdict, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict:
        return {
            "design": self.design,
            "total": self.total,
            "detected": self.detected,
            "detection_rate": round(self.detection_rate, 4),
            "strict_rate": round(self.strict_rate, 4),
            "by_verdict": self.by_verdict(),
            "equivalent": [o.describe() for o in self.equivalent],
            "escalated": [o.describe() for o in self.escalated],
        }


def run_mutant(
    design: Design,
    mutant_netlist,
    *,
    n_matrices: int = 4,
    seed: int = 1,
    cycle_budget: int | None = None,
    conditions: tuple[tuple[int, int, int], ...] = STANDARD_CONDITIONS,
    battery: bool = True,
) -> str | None:
    """Verify one mutant; the detection verdict, or ``None`` if it passed.

    Verification mirrors the standard's multi-condition procedure: first
    the directed battery (:func:`directed_matrices` — impulse and extreme
    blocks, skipped when ``battery=False``), then ``n_matrices`` random
    blocks from *each* IEEE 1180 input condition, resetting the simulator
    in between.  Single-range random stimulus misses data-dependent
    faults on bits one range rarely toggles; the impulse battery catches
    most of those directly.  The cycle budget covers each pass
    separately; the first anomaly wins.
    """
    sim = Simulator(mutant_netlist)
    passes = [{"matrices": directed_matrices()}] if battery else []
    passes += [{"n_matrices": n_matrices, "seed": seed,
                "low": low, "high": high, "sign": sign}
               for low, high, sign in conditions]
    for kwargs in passes:
        sim.reset()
        budget = res_budget.Budget(max_cycles=cycle_budget,
                                   design=design.name, phase="faults.verify")
        try:
            with res_budget.limit(budget):
                result = verify_design(design, simulator=sim, strict=False,
                                       **kwargs)
        except ProtocolError:
            return "protocol"
        except HarnessTimeout:
            return "timeout"
        except BudgetExceeded:
            return "budget"
        except ReproError:
            return "error"
        if not result.bit_exact:
            return "mismatch"
    return None


def run_campaign(
    design: Design,
    *,
    limit: int | None = 64,
    seed: int = 1,
    modes: tuple[str, ...] = MODES,
    n_matrices: int = 8,
    cycle_budget: int | None = None,
    equiv_matrices: int = 32,
    equiv_seed: int = 7,
) -> CampaignReport:
    """Inject up to ``limit`` sampled single faults and verify each mutant.

    Sampling is deterministic for a given ``seed`` so campaign results are
    reproducible.  ``limit=None`` runs every (site × mode) mutant —
    exhaustive, and only sensible for small netlists.  Gate survivors go
    through the escalation pass (``equiv_matrices`` blocks per condition,
    second seed, battery skipped — the gate already streamed it): caught
    there → verdict ``deep``; caught nowhere → ``equivalent``.
    """
    with obs_trace.span("faults.campaign", design=design.name) as span:
        netlist = elaborate(design.top)
        sites = enumerate_sites(netlist)
        pairs = [(site, mode) for site in sites for mode in modes]
        if limit is not None and limit < len(pairs):
            pairs = random.Random(seed).sample(pairs, limit)
        report = CampaignReport(design=design.name)
        for site, mode in pairs:
            mutant = inject(netlist, site, mode)
            verdict = run_mutant(design, mutant, n_matrices=n_matrices,
                                 seed=seed, cycle_budget=cycle_budget)
            if verdict is None:
                deep = run_mutant(design, mutant, n_matrices=equiv_matrices,
                                  seed=equiv_seed, battery=False,
                                  cycle_budget=None if cycle_budget is None
                                  else 4 * cycle_budget)
                verdict = "equivalent" if deep is None else "deep"
            report.outcomes.append(MutantOutcome(site, mode, verdict))
            obs_metrics.inc("faults.injected")
            obs_metrics.inc(f"faults.{verdict}")
        span.set(total=report.total, detected=report.detected,
                 rate=round(report.detection_rate, 4),
                 strict=round(report.strict_rate, 4))
        return report
