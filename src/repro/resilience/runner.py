"""Sandboxed per-design measurement with budgets, retries, and checkpoints.

:class:`SweepRunner` is the containment boundary between one design point
and the rest of a sweep: it arms a wall-clock/cycle :class:`~.budget.Budget`
around :func:`~repro.eval.measure.measure_design`, applies the retry policy
(retry once with the same configuration, then once more with a degraded
configuration, then record the failure), and persists every outcome to an
optional JSONL :class:`~.checkpoint.Checkpoint` so an interrupted sweep
resumes where it stopped.

A failure never escapes :meth:`SweepRunner.measure` — the sweep gets a
:class:`DesignResult` with ``status="failed"`` and a structured error
record instead, which the Table II / Fig. 1 renderers show as
``FAILED(<reason>)`` cells.  The only deliberate exceptions are
:class:`~repro.core.errors.SweepInterrupted` (the kill/resume hook) and
``KeyboardInterrupt`` (the user's ^C), which both leave the checkpoint
consistent.

All failure/retry/budget events flow through ``repro.obs`` counters
(``resilience.*``) and a ``resilience.run`` span per attempt.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..core.errors import (
    BudgetExceeded,
    ReproError,
    ScheduleError,
    SweepInterrupted,
    SweepPreempted,
)
from ..eval.measure import Measured, measure_design
from ..frontends.base import Design
from ..obs import events as obs_events
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from . import budget as res_budget
from .checkpoint import (
    SCHEMA_VERSION,
    Checkpoint,
    measured_from_dict,
    measured_to_dict,
)
from .errors import failure_record, failure_reason

__all__ = ["RunnerConfig", "DesignResult", "SweepRunner", "ABORT_ENV",
           "result_to_record", "result_from_record"]

# After this many freshly measured designs the runner raises
# SweepInterrupted — a deterministic stand-in for kill -9 used by the
# checkpoint/resume tests and the scripts/check.sh smoke.
ABORT_ENV = "REPRO_ABORT_AFTER"


@dataclass(frozen=True)
class RunnerConfig:
    """Policy knobs for one sweep."""

    wall_s: float | None = None       # per-design wall-clock budget
    max_cycles: int | None = None     # per-design simulation-cycle budget
    retries: int = 1                  # same-config retries after attempt 1
    degrade: bool = True              # add a final degraded-config attempt
    n_matrices: int = 4               # streamed matrices per measurement
    engine: str = "compiled"          # simulator engine for normal attempts

    def degraded_kwargs(self) -> dict:
        """The degraded final attempt: reference engine, shorter stream."""
        return {"n_matrices": max(2, self.n_matrices - 1),
                "engine": "interp", "use_cache": False}


@dataclass
class DesignResult:
    """Outcome of one contained design measurement."""

    name: str
    status: str                        # "ok" | "failed"
    measured: Measured | None = None
    error: dict | None = None
    attempts: int = 1
    degraded: bool = False
    from_checkpoint: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def reason(self) -> str:
        """Short ``FAILED(…)`` reason for table/figure cells."""
        return failure_reason(self.error or {})


def result_to_record(result: DesignResult) -> dict:
    """Serialize a :class:`DesignResult` in the checkpoint record shape.

    The same JSON schema backs the on-disk checkpoint and the byte stream
    a sharded-sweep worker ships its results over, so both round-trip
    measurements exactly (floats serialize via ``repr``).
    """
    measured = result.measured
    return {
        "schema": SCHEMA_VERSION,
        "design": result.name,
        "status": result.status,
        "measured": None if measured is None else measured_to_dict(measured),
        "error": result.error,
        "attempts": result.attempts,
        "degraded": result.degraded,
    }


def result_from_record(record: dict, *,
                       from_checkpoint: bool = False) -> DesignResult:
    """Rebuild a :class:`DesignResult` from its record form."""
    measured = record.get("measured")
    return DesignResult(
        name=record["design"],
        status=record["status"],
        measured=None if measured is None else measured_from_dict(measured),
        error=record.get("error"),
        attempts=record.get("attempts", 1),
        degraded=record.get("degraded", False),
        from_checkpoint=from_checkpoint,
    )


class SweepRunner:
    """Runs design measurements with failure containment for a whole sweep."""

    def __init__(
        self,
        config: RunnerConfig | None = None,
        checkpoint: Checkpoint | None = None,
        inject_failures: set[str] | frozenset[str] | tuple = (),
        abort_after: int | None = None,
        measure_fn=None,
        preempt=None,
    ) -> None:
        self.config = config or RunnerConfig()
        self.checkpoint = checkpoint
        self.inject_failures = frozenset(inject_failures)
        if abort_after is None:
            abort_after = int(os.environ.get(ABORT_ENV, "0")) or None
        self.abort_after = abort_after
        #: QoS preemption hook: a callable polled at every cell boundary
        #: (after the checkpoint record is durable).  Returning true
        #: raises :class:`SweepPreempted` so the scheduler can pause and
        #: later resume the sweep byte-identically.
        self.preempt = preempt
        self._measure = measure_fn or measure_design
        self._fresh_completed = 0
        self.stats = {"ok": 0, "failed": 0, "retries": 0, "degraded_runs": 0,
                      "checkpoint_hits": 0}

    # ------------------------------------------------------------------
    def measure(self, design: Design) -> DesignResult:
        """Measure ``design`` under the runner's policy; never raises on
        per-design failure (see module docstring for the exceptions)."""
        cached = self._from_checkpoint(design.name)
        if cached is not None:
            return cached
        return self.commit(self._measure_with_retries(design))

    def commit(self, result: DesignResult) -> DesignResult:
        """Record a freshly produced result: checkpoint, stats, obs, and
        the deterministic-abort hook.  Called by :meth:`measure` for every
        non-checkpoint result; the sharded executor calls it directly when
        adopting worker results, so parallel sweeps share the exact same
        bookkeeping (and checkpoint write order) as serial ones."""
        if self.checkpoint is not None:
            self.checkpoint.record(
                result.name, status=result.status, measured=result.measured,
                error=result.error, attempts=result.attempts,
                degraded=result.degraded,
            )
        self.stats["ok" if result.ok else "failed"] += 1
        obs_events.emit("cell.done", design=result.name,
                        status=result.status, attempts=result.attempts,
                        degraded=result.degraded)
        if not result.ok:
            obs_metrics.inc("resilience.failures")
            obs_trace.event("resilience.failed", design=result.name,
                            reason=result.reason, attempts=result.attempts)
        self._fresh_completed += 1
        if self.preempt is not None and self.preempt():
            # The boundary cell is already checkpointed, so the resumed
            # run replays it (and everything before it) verbatim.
            raise SweepPreempted(
                f"sweep preempted after {self._fresh_completed} fresh "
                f"designs; checkpoint is consistent",
                design=result.name, phase="sweep",
            )
        if self.abort_after is not None and self._fresh_completed >= self.abort_after:
            raise SweepInterrupted(
                f"sweep aborted after {self._fresh_completed} designs "
                f"({ABORT_ENV}); checkpoint is consistent",
                design=result.name, phase="sweep",
            )
        return result

    # ------------------------------------------------------------------
    def _from_checkpoint(self, name: str) -> DesignResult | None:
        if self.checkpoint is None:
            return None
        record = self.checkpoint.get(name)
        if record is None:
            return None
        self.stats["checkpoint_hits"] += 1
        obs_metrics.inc("resilience.checkpoint_hits")
        obs_trace.event("resilience.checkpoint_hit", design=name)
        return result_from_record(record, from_checkpoint=True)

    def _attempt_plan(self) -> list[bool]:
        """Per-attempt degraded flags: normal, retries…, degraded final."""
        plan = [False] * (1 + max(0, self.config.retries))
        if self.config.degrade:
            plan.append(True)
        return plan

    def _measure_with_retries(self, design: Design) -> DesignResult:
        config = self.config
        plan = self._attempt_plan()
        last_error: dict | None = None
        for attempt, degraded in enumerate(plan, start=1):
            if attempt > 1:
                self.stats["retries"] += 1
                obs_metrics.inc("resilience.retries")
                obs_events.emit("cell.retry", design=design.name,
                                attempt=attempt)
            if degraded:
                self.stats["degraded_runs"] += 1
                obs_metrics.inc("resilience.degraded_runs")
                obs_events.emit("cell.degrade", design=design.name,
                                attempt=attempt)
            try:
                measured = self._attempt(design, degraded)
            except (SweepInterrupted, KeyboardInterrupt):
                raise
            except ReproError as exc:
                last_error = failure_record(exc, design=design.name,
                                            phase=exc.phase or "measure")
                obs_trace.event("resilience.attempt_failed",
                                design=design.name, attempt=attempt,
                                degraded=degraded,
                                error=last_error["type"])
                if isinstance(exc, BudgetExceeded):
                    obs_metrics.inc("resilience.budget_exceeded")
                continue
            return DesignResult(name=design.name, status="ok",
                                measured=measured, attempts=attempt,
                                degraded=degraded)
        return DesignResult(name=design.name, status="failed",
                            error=last_error, attempts=len(plan),
                            degraded=config.degrade)

    def _attempt(self, design: Design, degraded: bool) -> Measured:
        config = self.config
        if design.name in self.inject_failures:
            raise ScheduleError("injected fault (forced sweep failure)",
                                design=design.name, phase="injected")
        kwargs = (config.degraded_kwargs() if degraded
                  else {"n_matrices": config.n_matrices,
                        "engine": config.engine})
        budget = res_budget.Budget(
            wall_s=config.wall_s, max_cycles=config.max_cycles,
            design=design.name, phase="measure",
        )
        obs_events.emit("phase.start", phase="measure", design=design.name,
                        degraded=degraded)
        status = "error"
        try:
            with obs_trace.span("resilience.run", design=design.name,
                                degraded=degraded):
                with res_budget.limit(budget):
                    measured = self._measure(design, **kwargs)
                budget.check_wall()
            status = "ok"
        finally:
            obs_events.emit("phase.end", phase="measure",
                            design=design.name, status=status)
        return measured
