"""Shared supervision arithmetic for crash-prone process pools.

Two independent subsystems keep worker processes alive against SIGKILLs:
the sharded sweep executor (:class:`repro.exec.ParallelSweepRunner`) and
the serve tier's pre-forked evaluator pool
(:class:`repro.serve.pool.WorkerPool`).  Both follow the same policy —
exponential backoff between respawns, capped per sleep, with a total
crash budget that turns "the environment is broken" into one honest
error instead of an infinite respawn loop — so the arithmetic lives
here, once.
"""

from __future__ import annotations

__all__ = ["CrashBudget", "backoff_delay", "default_crash_budget"]

#: Longest single backoff sleep, whatever the crash count (seconds).
BACKOFF_CAP_S = 1.0


def backoff_delay(crashes: int, base_s: float,
                  cap_s: float = BACKOFF_CAP_S) -> float:
    """Exponential backoff before the ``crashes``-th respawn.

    ``base_s * 2**(crashes - 1)``, capped at ``cap_s``; zero when
    ``base_s`` is zero (tests disable the sleeps) or nothing crashed yet.
    """
    if crashes <= 0 or base_s <= 0.0:
        return 0.0
    return min(base_s * 2 ** (crashes - 1), cap_s)


def default_crash_budget(tasks: int) -> int:
    """Total worker crashes a supervisor tolerates before aborting.

    Linear in the workload (every task may legitimately kill-once under
    chaos, plus its quarantine probe) with headroom for startup flakes.
    """
    return 2 * max(0, int(tasks)) + 8


class CrashBudget:
    """Crash accounting: count deaths, hand out backoffs, cap the total.

    :meth:`note` is called once per observed worker death and returns the
    backoff the supervisor should sleep before respawning.  Once more
    than ``limit`` deaths accumulate, :attr:`exhausted` turns true and
    the owner should stop respawning and fail honestly.
    """

    def __init__(self, limit: int | None, base_s: float = 0.05,
                 cap_s: float = BACKOFF_CAP_S) -> None:
        self.limit = limit
        self.base_s = max(0.0, float(base_s))
        self.cap_s = max(0.0, float(cap_s))
        self.crashes = 0

    def note(self) -> float:
        """Record one crash; the backoff to sleep before respawning."""
        self.crashes += 1
        return backoff_delay(self.crashes, self.base_s, self.cap_s)

    @property
    def exhausted(self) -> bool:
        return self.limit is not None and self.crashes > self.limit
