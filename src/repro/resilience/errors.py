"""The resilience error taxonomy (canonical re-export) and failure records.

The structured exception types live in :mod:`repro.core.errors` so that the
lowest layers (simulator, AXI harness, HLS compiler) can raise them without
importing upward.  This module is the facade sweep-level code programs
against, plus the helpers that turn a caught error into the JSON-ready
failure record stored in checkpoints and rendered as ``FAILED(…)`` cells.
"""

from __future__ import annotations

from ..core.errors import (
    BudgetExceeded,
    BuildError,
    EvaluationError,
    HarnessTimeout,
    ProtocolError,
    ReproError,
    ScheduleError,
    SimulationError,
    SweepInterrupted,
    SynthesisError,
)

__all__ = [
    "ReproError",
    "BuildError",
    "ScheduleError",
    "SimulationError",
    "HarnessTimeout",
    "BudgetExceeded",
    "ProtocolError",
    "SynthesisError",
    "EvaluationError",
    "SweepInterrupted",
    "failure_record",
    "failure_reason",
]


def failure_record(error: BaseException, design: str | None = None,
                   phase: str | None = None) -> dict:
    """A JSON-ready record of ``error`` (works for non-Repro errors too)."""
    if isinstance(error, ReproError):
        error.with_context(design=design, phase=phase)
        return error.record()
    return {
        "type": type(error).__name__,
        "message": str(error),
        "design": design,
        "phase": phase,
        "context": {},
    }


def failure_reason(record: dict) -> str:
    """The short reason shown in a ``FAILED(…)`` table cell."""
    return record.get("type") or "error"
