"""Wall-clock and simulation-cycle budgets for sandboxed design runs.

A :class:`Budget` is armed around a region of work with :func:`limit`; while
active, :meth:`Simulator.step <repro.sim.Simulator.step>` charges one cycle
per clock edge via :func:`charge`.  Exhausting either dimension raises
:class:`~repro.core.errors.BudgetExceeded`, which the sweep runner turns
into a ``FAILED(BudgetExceeded)`` cell instead of a dead sweep.

Costs when no budget is armed: one thread-local attribute read per charge
call, so unbudgeted simulation speed (and the obs disabled-overhead guard)
is unaffected.  The wall clock is only consulted every
:data:`WALL_CHECK_INTERVAL` cycles to keep ``time.monotonic`` off the hot
path.

The armed budget is **per thread**: the evaluation service
(:mod:`repro.serve`) arms request budgets from its executor threads, and a
budget armed for one request must never charge work running on another
thread.  Sweep processes are single-threaded, so for them this is
indistinguishable from a process-global.

This module deliberately sits below the rest of :mod:`repro.resilience`
(it imports only :mod:`repro.core.errors`) so the simulator can depend on
it without a cycle.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from ..core.errors import BudgetExceeded

__all__ = ["Budget", "limit", "active", "charge", "WALL_CHECK_INTERVAL"]

WALL_CHECK_INTERVAL = 256

_STATE = threading.local()


class Budget:
    """A consumable allowance of wall-clock seconds and simulation cycles."""

    __slots__ = ("wall_s", "max_cycles", "design", "phase",
                 "cycles", "_deadline", "_until_wall_check")

    def __init__(self, wall_s: float | None = None,
                 max_cycles: int | None = None,
                 design: str | None = None,
                 phase: str | None = None) -> None:
        self.wall_s = wall_s
        self.max_cycles = max_cycles
        self.design = design
        self.phase = phase
        self.cycles = 0
        self._deadline = None if wall_s is None else time.monotonic() + wall_s
        self._until_wall_check = WALL_CHECK_INTERVAL

    def charge(self, n: int = 1) -> None:
        """Consume ``n`` simulation cycles; raise when a limit is crossed."""
        self.cycles += n
        if self.max_cycles is not None and self.cycles > self.max_cycles:
            raise BudgetExceeded(
                f"simulation cycle budget exhausted "
                f"({self.cycles} > {self.max_cycles})",
                design=self.design, phase=self.phase,
                limit_cycles=self.max_cycles, cycles=self.cycles,
            )
        if self._deadline is not None:
            self._until_wall_check -= n
            if self._until_wall_check <= 0:
                self._until_wall_check = WALL_CHECK_INTERVAL
                self.check_wall()

    def check_wall(self) -> None:
        """Raise if the wall-clock deadline has passed (cheap to skip)."""
        if self._deadline is not None and time.monotonic() > self._deadline:
            raise BudgetExceeded(
                f"wall-clock budget exhausted ({self.wall_s:.3g}s)",
                design=self.design, phase=self.phase,
                limit_s=self.wall_s, cycles=self.cycles,
            )

    @property
    def remaining_cycles(self) -> int | None:
        if self.max_cycles is None:
            return None
        return max(0, self.max_cycles - self.cycles)


def active() -> Budget | None:
    """The budget currently armed for this thread, if any."""
    return getattr(_STATE, "budget", None)


def charge(n: int = 1) -> None:
    """Charge the active budget (no-op — one local read — when unarmed)."""
    budget = getattr(_STATE, "budget", None)
    if budget is not None:
        budget.charge(n)


@contextmanager
def limit(budget: Budget | None):
    """Arm ``budget`` for the enclosed region (nestable; inner wins)."""
    previous = getattr(_STATE, "budget", None)
    _STATE.budget = budget if budget is not None else previous
    try:
        yield budget
    finally:
        _STATE.budget = previous
