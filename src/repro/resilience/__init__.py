"""repro.resilience — fault-tolerant sweeps for the paper's evaluation.

Five pieces:

* :mod:`~repro.resilience.errors`     — the typed failure taxonomy
  (canonical re-export of :mod:`repro.core.errors`) plus failure records;
* :mod:`~repro.resilience.budget`     — wall-clock / simulation-cycle
  budgets, charged by the simulator while armed;
* :mod:`~repro.resilience.runner`     — :class:`SweepRunner`, the per-design
  sandbox with retry/degrade policy and failure containment;
* :mod:`~repro.resilience.checkpoint` — JSONL checkpoint/resume for
  interruptible ``table2``/``fig1`` sweeps;
* :mod:`~repro.resilience.faults` / :mod:`~repro.resilience.campaign` —
  stuck-at/bit-flip netlist mutation and the campaign that measures how
  reliably ``verify_design`` detects injected faults.

Only ``errors`` and ``budget`` are imported eagerly: the simulator charges
the active budget on every cycle, so this package must stay importable
from below the sim layer.  ``runner``/``checkpoint``/``campaign`` (which
import the evaluation stack) load lazily on first attribute access.
"""

from __future__ import annotations

import importlib

from . import budget
from .errors import (
    BudgetExceeded,
    BuildError,
    HarnessTimeout,
    ReproError,
    ScheduleError,
    SimulationError,
    SweepInterrupted,
    failure_reason,
    failure_record,
)

__all__ = [
    "budget",
    "checkpoint",
    "runner",
    "faults",
    "campaign",
    "errors",
    "ReproError",
    "BuildError",
    "ScheduleError",
    "SimulationError",
    "HarnessTimeout",
    "BudgetExceeded",
    "SweepInterrupted",
    "failure_record",
    "failure_reason",
    "Budget",
    "Checkpoint",
    "SweepRunner",
    "RunnerConfig",
    "DesignResult",
    "run_campaign",
]

Budget = budget.Budget

_LAZY_ATTRS = {
    "checkpoint": ("repro.resilience.checkpoint", None),
    "runner": ("repro.resilience.runner", None),
    "faults": ("repro.resilience.faults", None),
    "campaign": ("repro.resilience.campaign", None),
    "errors": ("repro.resilience.errors", None),
    "Checkpoint": ("repro.resilience.checkpoint", "Checkpoint"),
    "SweepRunner": ("repro.resilience.runner", "SweepRunner"),
    "RunnerConfig": ("repro.resilience.runner", "RunnerConfig"),
    "DesignResult": ("repro.resilience.runner", "DesignResult"),
    "run_campaign": ("repro.resilience.campaign", "run_campaign"),
}


def __getattr__(name: str):
    target = _LAZY_ATTRS.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module = importlib.import_module(target[0])
    value = module if target[1] is None else getattr(module, target[1])
    globals()[name] = value
    return value
