"""Weighted fair-share dequeue: deficit round-robin over tenants.

The queue replaces the FIFO order the job manager and the fabric broker
used to dequeue in.  Tenants take turns in a fixed ring; on each visit a
tenant's integer deficit grows by ``quantum * weight`` and every dequeue
spends one unit, so a weight-``w`` tenant drains ``w`` items per round.
The no-starvation bound follows directly: with unit costs, the item at
the head of any tenant's queue waits at most ``sum(other weights)``
dequeues — even while a saturating neighbour keeps hundreds queued.

Everything is integer arithmetic over explicit sequence numbers (no
floats, no wall clock), so two runs enqueueing the same items in the
same order dequeue them in the same order: scheduling is deterministic,
which the byte-identity invariant of preempted-and-resumed sweeps
leans on.

Within a tenant, items order by ``(-priority, seq)``: higher priority
first, submission order among equals.  A re-enqueued item may keep its
original ``seq`` (a preempted job, an expired fabric lease) so it
returns to the head of its class instead of the back of the line.
"""

from __future__ import annotations

from bisect import insort

__all__ = ["WeightedFairQueue"]


class _TenantQueue:
    __slots__ = ("weight", "deficit", "items")

    def __init__(self, weight: int) -> None:
        self.weight = max(1, int(weight))
        self.deficit = 0
        self.items: list[tuple[int, int, object]] = []  # (-prio, seq, item)


class WeightedFairQueue:
    """Deterministic deficit-round-robin queue across named tenants."""

    def __init__(self, quantum: int = 1) -> None:
        self.quantum = max(1, int(quantum))
        self._tenants: dict[str, _TenantQueue] = {}
        self._order: list[str] = []   # ring of tenants, first-seen order
        self._cursor = 0
        self._charged = False         # cursor tenant got its quantum?
        self._seq = 0
        self._count = 0

    # ------------------------------------------------------------------
    def enqueue(self, tenant: str, item, *, weight: int = 1,
                priority: int = 0, seq: int | None = None) -> int:
        """Queue ``item`` under ``tenant``; returns its sequence number.

        Passing a previous ``seq`` back re-inserts the item at its old
        position within the tenant's priority class (preemption/requeue
        must not push work to the back of the line it already waited in).
        """
        queue = self._tenants.get(tenant)
        if queue is None:
            queue = _TenantQueue(weight)
            self._tenants[tenant] = queue
            self._order.append(tenant)
        else:
            queue.weight = max(1, int(weight))
        if seq is None:
            self._seq += 1
            seq = self._seq
        insort(queue.items, (-int(priority), int(seq), item))
        self._count += 1
        return seq

    def __len__(self) -> int:
        return self._count

    def highest_priority(self) -> int | None:
        """The best priority among all queued items (``None`` if empty) —
        what a running job compares against at each preemption point."""
        best = None
        for queue in self._tenants.values():
            if queue.items:
                priority = -queue.items[0][0]
                if best is None or priority > best:
                    best = priority
        return best

    def snapshot(self) -> dict:
        """Queue depth per tenant (the ``/healthz`` qos block)."""
        return {name: len(self._tenants[name].items)
                for name in self._order if self._tenants[name].items}

    # ------------------------------------------------------------------
    def pop(self, ready=None):
        """Dequeue the next item under DRR, or ``None`` if nothing is
        ready.  ``ready(item)`` filters (e.g. backoff timers): unready
        items stay queued without spending their tenant's deficit.
        """
        if self._count == 0 or not self._order:
            return None
        hops = 0
        limit = 2 * len(self._order) + 1
        while hops < limit:
            name = self._order[self._cursor % len(self._order)]
            queue = self._tenants[name]
            index = self._first_ready(queue, ready)
            if index is None:
                if not queue.items:
                    queue.deficit = 0   # classic DRR: idle tenants reset
                self._advance()
                hops += 1
                continue
            if not self._charged:
                queue.deficit += self.quantum * queue.weight
                self._charged = True
            if queue.deficit >= 1:
                queue.deficit -= 1
                _prio, _seq, item = queue.items.pop(index)
                self._count -= 1
                if not queue.items:
                    queue.deficit = 0
                    self._advance()
                return item
            self._advance()
            hops += 1
        return None

    def _advance(self) -> None:
        self._cursor = (self._cursor + 1) % max(1, len(self._order))
        self._charged = False

    @staticmethod
    def _first_ready(queue: _TenantQueue, ready) -> int | None:
        if not queue.items:
            return None
        if ready is None:
            return 0
        for index, (_prio, _seq, item) in enumerate(queue.items):
            if ready(item):
                return index
        return None
