"""Integer token-bucket rate limiting with an injectable clock.

The bucket stores *milli-tokens* and reads the clock in whole
milliseconds, so every refill and spend is integer arithmetic — two
runs presenting the same clock readings make byte-identical admission
decisions, which is what lets ``tests/test_qos.py`` drive the limiter
with a deterministic fake clock.

``try_acquire`` never blocks: it either admits (returns ``None``) or
returns the computed whole-second wait until the next token matures —
the ``Retry-After`` value the serve tier puts on its 429.
"""

from __future__ import annotations

import time

__all__ = ["RateLimiter", "TokenBucket"]

#: Milli-tokens per request (cost 1 token).
_COST = 1000


class TokenBucket:
    """One tenant's bucket: ``burst`` capacity, ``rate_per_s`` refill."""

    def __init__(self, rate_per_s: int, burst: int,
                 clock=time.monotonic) -> None:
        self.rate_per_s = max(0, int(rate_per_s))
        self.burst = max(1, int(burst))
        self._clock = clock
        self._milli = self.burst * _COST       # starts full
        self._last_ms = self._now_ms()

    def _now_ms(self) -> int:
        return int(self._clock() * 1000)

    def try_acquire(self) -> int | None:
        """Admit one request, or return the whole-second retry delay.

        ``None`` means admitted.  A non-``None`` return is always >= 1:
        the integer-ceiling seconds until enough milli-tokens mature.
        A zero rate means unlimited — always admitted.
        """
        if self.rate_per_s <= 0:
            return None
        now = self._now_ms()
        elapsed = max(0, now - self._last_ms)
        self._last_ms = now
        self._milli = min(self.burst * _COST,
                          self._milli + elapsed * self.rate_per_s)
        if self._milli >= _COST:
            self._milli -= _COST
            return None
        deficit_ms = -(-(_COST - self._milli) // self.rate_per_s)
        return max(1, -(-deficit_ms // 1000))


class RateLimiter:
    """Per-tenant buckets, built lazily from each tenant's policy."""

    def __init__(self, clock=time.monotonic) -> None:
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}

    def try_acquire(self, tenant) -> int | None:
        """Admit one request for ``tenant`` (a :class:`~.tenants.Tenant`),
        or return its computed ``Retry-After`` seconds."""
        if tenant.rate_per_s <= 0:
            return None
        bucket = self._buckets.get(tenant.name)
        if bucket is None:
            bucket = TokenBucket(tenant.rate_per_s, tenant.burst,
                                 clock=self._clock)
            self._buckets[tenant.name] = bucket
        return bucket.try_acquire()
