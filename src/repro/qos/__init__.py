"""Multi-tenant quality of service: keys, quotas, fair-share, preemption.

``repro.qos`` is the admission and scheduling layer the serve tier and
the fabric broker thread their tenant policy through:

* :class:`~repro.qos.tenants.Keyring` maps ``X-Api-Key`` headers to
  named :class:`~repro.qos.tenants.Tenant` records (weight, rate limit,
  job quota, default priority); requests without a key fall back to the
  anonymous tenant so existing clients keep working unchanged.
* :class:`~repro.qos.bucket.TokenBucket` /
  :class:`~repro.qos.bucket.RateLimiter` implement per-tenant request
  throttling in pure integer milli-token arithmetic with an injectable
  clock — over the limit is an immediate 429 with a computed
  ``Retry-After``, never a hang.
* :class:`~repro.qos.sched.WeightedFairQueue` is a deficit-round-robin
  dequeue across tenants (integer deficits only, so scheduling is
  deterministic): a weight-``w`` tenant drains ``w`` items per round,
  which bounds any tenant's wait by the sum of the other weights even
  under a saturating neighbour.  Within a tenant, items order by
  descending priority then submission order.

The sweep-side preemption hook lives in
:class:`repro.resilience.runner.SweepRunner` (``preempt=``) and raises
:class:`repro.core.errors.SweepPreempted` at a cell boundary after the
checkpoint record is durable, so a preempted-then-resumed job's stdout
is byte-identical to an uninterrupted run.
"""

from __future__ import annotations

from .bucket import RateLimiter, TokenBucket
from .sched import WeightedFairQueue
from .tenants import ANON, Keyring, Tenant, UnknownApiKeyError

__all__ = [
    "ANON",
    "Keyring",
    "RateLimiter",
    "Tenant",
    "TokenBucket",
    "UnknownApiKeyError",
    "WeightedFairQueue",
]
