"""Tenant identity: API keys, per-tenant policy, the anonymous default.

A keyring file (``--api-keys FILE``) is JSON with two tables::

    {
      "tenants": {
        "heavy": {"weight": 4, "rate_per_s": 10, "burst": 20,
                  "max_jobs": 2, "priority": 5},
        "light": {"weight": 1}
      },
      "keys": {"secret-key-1": "heavy", "secret-key-2": "light"}
    }

Every policy field is optional and integer-valued.  ``rate_per_s = 0``
means unlimited (no token bucket), ``max_jobs = null``/absent means no
concurrent-job quota.  A request presenting no ``X-Api-Key`` header
resolves to the anonymous tenant (name ``"anon"``, policy set by the
serve-side ``--quota/--rate/--burst/--weight`` flags), so existing
clients keep working; a request presenting an *unknown* key is a 403 —
a typo'd credential must never silently demote to anonymous.
"""

from __future__ import annotations

import json
import os

from ..core.errors import UsageError

__all__ = ["ANON", "Keyring", "Tenant", "UnknownApiKeyError"]

#: Name of the tenant requests without an API key resolve to.
ANON = "anon"

#: Integer policy fields a keyring entry may set (anything else is a
#: config error, caught at load time rather than silently ignored).
_TENANT_FIELDS = ("weight", "rate_per_s", "burst", "max_jobs", "priority")


class UnknownApiKeyError(Exception):
    """The presented ``X-Api-Key`` matches no keyring entry (HTTP 403)."""


class Tenant:
    """One tenant's QoS policy (immutable value object)."""

    __slots__ = _TENANT_FIELDS + ("name",)

    def __init__(self, name: str = ANON, *, weight: int = 1,
                 rate_per_s: int = 0, burst: int = 8,
                 max_jobs: int | None = None, priority: int = 0) -> None:
        self.name = str(name)
        self.weight = max(1, int(weight))
        self.rate_per_s = max(0, int(rate_per_s))
        self.burst = max(1, int(burst))
        self.max_jobs = None if max_jobs is None else max(0, int(max_jobs))
        self.priority = int(priority)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Tenant({self.name!r}, weight={self.weight}, "
                f"rate_per_s={self.rate_per_s}, burst={self.burst}, "
                f"max_jobs={self.max_jobs}, priority={self.priority})")


class Keyring:
    """API-key → :class:`Tenant` resolution with an anonymous default."""

    def __init__(self, default: Tenant | None = None) -> None:
        self.default = default or Tenant(ANON)
        self._tenants: dict[str, Tenant] = {}
        self._keys: dict[str, str] = {}

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, payload: dict,
                  default: Tenant | None = None) -> "Keyring":
        """Build a keyring from the parsed file payload (validated)."""
        if not isinstance(payload, dict):
            raise UsageError("api-keys file must hold a JSON object")
        ring = cls(default=default)
        tenants = payload.get("tenants") or {}
        if not isinstance(tenants, dict):
            raise UsageError("api-keys 'tenants' must be an object")
        for name, spec in tenants.items():
            if not isinstance(spec, dict):
                raise UsageError(f"tenant {name!r} spec must be an object")
            unknown = sorted(set(spec) - set(_TENANT_FIELDS))
            if unknown:
                raise UsageError(
                    f"tenant {name!r} has unknown field {unknown[0]!r} "
                    f"(choices: {', '.join(_TENANT_FIELDS)})")
            try:
                ring._tenants[name] = Tenant(name, **spec)
            except (TypeError, ValueError) as exc:
                raise UsageError(f"tenant {name!r}: {exc}") from exc
        keys = payload.get("keys") or {}
        if not isinstance(keys, dict):
            raise UsageError("api-keys 'keys' must be an object")
        for key, name in keys.items():
            if not isinstance(name, str):
                raise UsageError(f"key {key!r} must name a tenant")
            if name not in ring._tenants:
                raise UsageError(
                    f"key {key!r} names undeclared tenant {name!r}")
            ring._keys[key] = name
        return ring

    @classmethod
    def load(cls, path: str | os.PathLike,
             default: Tenant | None = None) -> "Keyring":
        """Load and validate a keyring file; bad files are exit-2 errors."""
        try:
            with open(os.fspath(path), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise UsageError(f"cannot read api-keys file: {exc}") from exc
        except ValueError as exc:
            raise UsageError(f"api-keys file is not JSON: {exc}") from exc
        return cls.from_dict(payload, default=default)

    # ------------------------------------------------------------------
    def resolve(self, api_key: str | None) -> Tenant:
        """The tenant for one request's ``X-Api-Key`` header value.

        No key → the anonymous default; an unknown key →
        :class:`UnknownApiKeyError` (the server answers 403).
        """
        if not api_key:
            return self.default
        name = self._keys.get(api_key)
        if name is None:
            raise UnknownApiKeyError("unknown API key")
        return self._tenants[name]

    def get(self, name: str) -> Tenant:
        """The named tenant's policy (default policy for unknown names,
        e.g. a journal-replayed job whose tenant left the keyring)."""
        if name == self.default.name:
            return self.default
        return self._tenants.get(name) or Tenant(
            name, weight=self.default.weight,
            rate_per_s=self.default.rate_per_s, burst=self.default.burst,
            max_jobs=self.default.max_jobs, priority=self.default.priority)

    def all_tenants(self) -> list[Tenant]:
        """Every known tenant, anonymous default first (stable order) —
        what the serve tier pre-registers zero-valued counters for."""
        return [self.default] + [self._tenants[name]
                                 for name in sorted(self._tenants)]
