"""Disk-backed, content-addressed artifact store.

Artifacts live under ``<root>/<phase>/<key[:2]>/<key>.<ext>`` where
``key`` is a :func:`~repro.cache.keys.artifact_key` digest.  Two payload
shapes are supported:

* **JSON** — ``Measured`` results and other plain records;
* **pickle** — elaborated netlists and other rich Python objects.

Writes are atomic (temp file + ``os.replace``), so concurrent workers of
a sharded sweep can populate the same cache directory without locking:
the worst case is two workers computing the same artifact and one
``replace`` winning, which is harmless because entries are content
addressed.  Corrupt or unreadable entries count as misses (and bump the
``errors`` stat) instead of failing the sweep.

Every hit/miss/put is tracked twice: in the cache's own ``stats`` dict
(always, for CLI summaries) and in guarded ``repro.obs`` counters
(``cache.hits`` / ``cache.misses`` / ``cache.puts``) that record only
while instrumentation is enabled.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from contextlib import contextmanager

from ..obs import metrics as obs_metrics

__all__ = ["ArtifactCache", "active", "set_active", "activate"]


class ArtifactCache:
    """One cache directory: get/put JSON and pickle payloads by digest."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.stats = {"hits": 0, "misses": 0, "puts": 0, "errors": 0}

    # -- bookkeeping ---------------------------------------------------
    def _hit(self) -> None:
        self.stats["hits"] += 1
        obs_metrics.inc("cache.hits")

    def _miss(self) -> None:
        self.stats["misses"] += 1
        obs_metrics.inc("cache.misses")

    def _put(self) -> None:
        self.stats["puts"] += 1
        obs_metrics.inc("cache.puts")

    def merge_stats(self, stats: dict) -> None:
        """Fold another cache handle's stats in (e.g. a worker's delta)."""
        for key, value in stats.items():
            self.stats[key] = self.stats.get(key, 0) + value

    def summary(self) -> str | None:
        """One-line ``cache: …`` summary, or ``None`` when untouched."""
        stats = self.stats
        if not any(stats.values()):
            return None
        return (f"cache: {stats['hits']} hits, {stats['misses']} misses, "
                f"{stats['puts']} puts ({self.root})")

    # -- paths ---------------------------------------------------------
    def _path(self, phase: str, key: str, ext: str) -> str:
        return os.path.join(self.root, phase, key[:2], f"{key}.{ext}")

    def _write_atomic(self, path: str, data: bytes) -> None:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    # -- JSON payloads -------------------------------------------------
    def get_json(self, phase: str, key: str) -> dict | None:
        path = self._path(phase, key, "json")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            self._miss()
            return None
        except (OSError, ValueError):
            self.stats["errors"] += 1
            self._miss()
            return None
        self._hit()
        return payload

    def put_json(self, phase: str, key: str, payload: dict) -> None:
        data = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._write_atomic(self._path(phase, key, "json"), data)
        self._put()

    # -- pickle payloads -----------------------------------------------
    def get_pickle(self, phase: str, key: str):
        path = self._path(phase, key, "pkl")
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            self._miss()
            return None
        except Exception:
            self.stats["errors"] += 1
            self._miss()
            return None
        self._hit()
        return payload

    def put_pickle(self, phase: str, key: str, payload) -> bool:
        """Store a pickled artifact; unpicklable payloads are skipped."""
        try:
            data = pickle.dumps(payload)
        except Exception:
            self.stats["errors"] += 1
            return False
        self._write_atomic(self._path(phase, key, "pkl"), data)
        self._put()
        return True


# ----------------------------------------------------------------------
# process-wide active cache (consulted by measure_design / _synth_pair)
# ----------------------------------------------------------------------

_ACTIVE: ArtifactCache | None = None


def active() -> ArtifactCache | None:
    """The cache the measurement pipeline should consult, if any."""
    return _ACTIVE


def set_active(cache: ArtifactCache | None) -> ArtifactCache | None:
    """Install ``cache`` process-wide (workers call this at startup)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = cache
    return previous


@contextmanager
def activate(cache: ArtifactCache | None):
    """Scoped :func:`set_active` for sessions and tests."""
    previous = set_active(cache)
    try:
        yield cache
    finally:
        set_active(previous)
