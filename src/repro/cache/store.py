"""Disk-backed, content-addressed artifact store.

Artifacts live under ``<root>/<phase>/<key[:2]>/<key>.<ext>`` where
``key`` is a :func:`~repro.cache.keys.artifact_key` digest.  Two payload
shapes are supported:

* **JSON** — ``Measured`` results and other plain records;
* **pickle** — elaborated netlists and other rich Python objects.

Writes are atomic (temp file + ``os.replace``), so concurrent workers of
a sharded sweep can populate the same cache directory without locking:
the worst case is two workers computing the same artifact and one
``replace`` winning, which is harmless because entries are content
addressed.

**Integrity:** every artifact is sealed with a SHA-256 checksum footer
(``<body>\\n#repro-sha256:<hexdigest>\\n``) at write time and verified at
read time.  A mismatch, truncation, missing footer, or parse/unpickle
failure never raises into the sweep: the entry is moved to
``<root>/corrupt/`` for post-mortem, the ``corrupt`` (and ``errors``)
stats bump, the guarded ``cache.corrupt`` obs counter records, and the
read falls through to a miss so the value is honestly recomputed.

Every hit/miss/put is tracked twice: in the cache's own ``stats`` dict
(always, for CLI summaries) and in guarded ``repro.obs`` counters
(``cache.hits`` / ``cache.misses`` / ``cache.puts`` / ``cache.corrupt``)
that record only while instrumentation is enabled.  An active
:class:`~repro.chaos.ChaosPolicy` may rot the sealed blob on its way to
disk (bit-rot simulation); verification is downstream of that hook by
design, so injected corruption is always caught on read.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from contextlib import contextmanager

from .. import chaos as chaos_mod
from ..obs import events as obs_events
from ..obs import metrics as obs_metrics

__all__ = ["ArtifactCache", "split_footer", "active", "set_active",
           "activate"]

#: Separates an artifact body from its hex SHA-256 checksum footer.
FOOTER_MARK = b"\n#repro-sha256:"


def _digest(body: bytes) -> bytes:
    return hashlib.sha256(body).hexdigest().encode("ascii")


def seal(body: bytes) -> bytes:
    """Append the checksum footer to an artifact body."""
    return body + FOOTER_MARK + _digest(body) + b"\n"


def split_footer(blob: bytes) -> bytes | None:
    """The verified body of a sealed artifact, or ``None`` if corrupt."""
    body, sep, tail = blob.rpartition(FOOTER_MARK)
    if sep and tail.strip() == _digest(body):
        return body
    return None


class ArtifactCache:
    """One cache directory: get/put JSON and pickle payloads by digest."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.stats = {"hits": 0, "misses": 0, "puts": 0, "errors": 0,
                      "corrupt": 0}
        #: Root-relative paths of every sealed entry this handle wrote,
        #: in write order.  Fabric pull-workers use the tail of this list
        #: as the per-task artifact manifest to upload to the master.
        self.written: list[str] = []

    # -- bookkeeping ---------------------------------------------------
    def _hit(self) -> None:
        self.stats["hits"] += 1
        obs_metrics.inc("cache.hits")

    def _miss(self) -> None:
        self.stats["misses"] += 1
        obs_metrics.inc("cache.misses")

    def _put(self) -> None:
        self.stats["puts"] += 1
        obs_metrics.inc("cache.puts")

    def merge_stats(self, stats: dict) -> None:
        """Fold another cache handle's stats in (e.g. a worker's delta)."""
        for key, value in stats.items():
            self.stats[key] = self.stats.get(key, 0) + value

    def summary(self) -> str | None:
        """One-line ``cache: …`` summary, or ``None`` when untouched."""
        stats = self.stats
        if not any(stats.values()):
            return None
        line = (f"cache: {stats['hits']} hits, {stats['misses']} misses, "
                f"{stats['puts']} puts")
        if stats.get("corrupt"):
            line += f", {stats['corrupt']} corrupt (quarantined)"
        return f"{line} ({self.root})"

    # -- paths ---------------------------------------------------------
    def _path(self, phase: str, key: str, ext: str) -> str:
        return os.path.join(self.root, phase, key[:2], f"{key}.{ext}")

    def _write_atomic(self, path: str, data: bytes) -> None:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    # -- integrity -----------------------------------------------------
    def _write_sealed(self, path: str, body: bytes, key: str) -> None:
        blob = seal(body)
        policy = chaos_mod.active()
        if policy is not None:
            blob = policy.corrupt_bytes(f"cache:{key}", blob)
        self._write_atomic(path, blob)
        self.written.append(os.path.relpath(path, self.root))

    def _quarantine(self, path: str) -> None:
        """Move a corrupt entry aside (post-mortem) and count it."""
        self.stats["corrupt"] += 1
        self.stats["errors"] += 1
        obs_metrics.inc("cache.corrupt")
        obs_events.emit("cache.corrupt", path=os.path.basename(path))
        dest_dir = os.path.join(self.root, "corrupt")
        try:
            os.makedirs(dest_dir, exist_ok=True)
            os.replace(path, os.path.join(dest_dir, os.path.basename(path)))
        except OSError:
            # Racing reader already moved it, or the FS is failing: the
            # miss below still recomputes honestly either way.
            pass

    def _read_verified(self, path: str) -> bytes | None:
        """Checksum-verified artifact body; ``None`` after quarantining.

        Raises ``FileNotFoundError``/``OSError`` like ``open`` does —
        callers map those to plain misses.
        """
        with open(path, "rb") as handle:
            blob = handle.read()
        body = split_footer(blob)
        if body is None:
            self._quarantine(path)
        return body

    # -- JSON payloads -------------------------------------------------
    def get_json(self, phase: str, key: str) -> dict | None:
        path = self._path(phase, key, "json")
        try:
            body = self._read_verified(path)
        except FileNotFoundError:
            self._miss()
            return None
        except OSError:
            self.stats["errors"] += 1
            self._miss()
            return None
        if body is None:
            self._miss()
            return None
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            # Checksum matched but the body never was JSON (writer bug,
            # or a foreign file dropped into the tree): same quarantine.
            self._quarantine(path)
            self._miss()
            return None
        self._hit()
        return payload

    def put_json(self, phase: str, key: str, payload: dict) -> None:
        data = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._write_sealed(self._path(phase, key, "json"), data,
                           f"{phase}/{key}.json")
        self._put()

    # -- pickle payloads -----------------------------------------------
    def get_pickle(self, phase: str, key: str):
        path = self._path(phase, key, "pkl")
        try:
            body = self._read_verified(path)
        except FileNotFoundError:
            self._miss()
            return None
        except OSError:
            self.stats["errors"] += 1
            self._miss()
            return None
        if body is None:
            self._miss()
            return None
        try:
            payload = pickle.loads(body)
        except Exception:
            self._quarantine(path)
            self._miss()
            return None
        self._hit()
        return payload

    def put_pickle(self, phase: str, key: str, payload) -> bool:
        """Store a pickled artifact; unpicklable payloads are skipped."""
        try:
            data = pickle.dumps(payload)
        except Exception:
            self.stats["errors"] += 1
            return False
        self._write_sealed(self._path(phase, key, "pkl"), data,
                           f"{phase}/{key}.pkl")
        self._put()
        return True

    # -- raw blobs (fabric artifact wire transport) --------------------
    def blob_path(self, key: str) -> str:
        """Where the raw blob addressed by ``key`` (hex SHA-256) lives."""
        return os.path.join(self.root, "fabric", key[:2], f"{key}.bin")

    def put_blob(self, data: bytes, key: str) -> str:
        """Store a raw blob at its SHA-256 address; reject mismatches.

        The fabric artifact endpoint feeds uploads through here: the
        claimed address must equal the digest of the bytes actually
        received, so a tampered or truncated upload never lands in the
        tree — it is written to ``<root>/corrupt/`` for post-mortem
        (counted like any corrupt entry) and ``ValueError`` is raised.
        """
        actual = hashlib.sha256(data).hexdigest()
        if actual != key:
            quarantine_path = os.path.join(self.root, "corrupt",
                                           f"{key}.bin")
            self._write_atomic(quarantine_path, data)
            self.stats["corrupt"] += 1
            self.stats["errors"] += 1
            obs_metrics.inc("cache.corrupt")
            obs_events.emit("cache.corrupt", path=f"{key}.bin",
                            reason="address mismatch")
            raise ValueError(
                f"blob digest {actual[:12]}… does not match its "
                f"address {key[:12]}…")
        self._write_atomic(self.blob_path(key), data)
        self._put()
        return key

    def get_blob(self, key: str) -> bytes | None:
        """Raw blob by SHA-256 address, re-verified; ``None`` on a miss."""
        path = self.blob_path(key)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            self._miss()
            return None
        if hashlib.sha256(data).hexdigest() != key:
            self._quarantine(path)
            self._miss()
            return None
        self._hit()
        return data

    def install(self, relpath: str, data: bytes) -> bool:
        """Place uploaded bytes at a root-relative cache path, atomically.

        The fabric master installs worker-produced sealed artifacts into
        its own tree through this, after the blob passed its address
        check.  Paths are sanitized (no absolute paths, no ``..``
        escapes); the normal read-time checksum verification still
        guards the content, so a bogus body is quarantined on first use.
        """
        clean = os.path.normpath(relpath)
        if (os.path.isabs(clean) or clean.startswith("..")
                or clean != relpath.rstrip("/")):
            return False
        self._write_atomic(os.path.join(self.root, clean), data)
        return True


# ----------------------------------------------------------------------
# process-wide active cache (consulted by measure_design / _synth_pair)
# ----------------------------------------------------------------------

_ACTIVE: ArtifactCache | None = None


def active() -> ArtifactCache | None:
    """The cache the measurement pipeline should consult, if any."""
    return _ACTIVE


def set_active(cache: ArtifactCache | None) -> ArtifactCache | None:
    """Install ``cache`` process-wide (workers call this at startup)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = cache
    return previous


@contextmanager
def activate(cache: ArtifactCache | None):
    """Scoped :func:`set_active` for sessions and tests."""
    previous = set_active(cache)
    try:
        yield cache
    finally:
        set_active(previous)
