"""Content-addressed artifact cache for incremental sweeps.

A :class:`ArtifactCache` (``--cache DIR`` on the CLI,
``Session(cache=…)`` in :mod:`repro.api`) makes repeat sweeps
incremental and cross-command: elaborated netlists and ``Measured``
results are stored on disk keyed by a digest of (design name + config,
pipeline phase + parameters, source-tree code digest), so a ``fig1`` run
reuses artifacts a ``table2`` run produced, a warm rerun skips
simulation entirely, and any edit to the framework source invalidates
everything automatically.

* :mod:`repro.cache.keys`  — the digest scheme (:func:`code_digest`,
  :func:`artifact_key`);
* :mod:`repro.cache.store` — the on-disk store plus the process-wide
  *active cache* hook the measurement pipeline consults.
"""

from .keys import artifact_key, code_digest
from .store import ArtifactCache, activate, active, set_active, split_footer

__all__ = [
    "ArtifactCache",
    "artifact_key",
    "code_digest",
    "split_footer",
    "active",
    "set_active",
    "activate",
]
