"""Content-addressed cache keys.

Every artifact key mixes three ingredients, so a cache entry is valid
exactly as long as all three are unchanged:

* the **code digest** — a SHA-256 over the ``repro`` source tree, so any
  edit to the framework invalidates everything it may have influenced;
* the **design identity** — name and configuration of the design point;
* the **pipeline phase** plus its parameters (``n_matrices``, ``engine``,
  ``max_dsp`` …), so the same design can hold one artifact per phase.

The code digest walks the package directory once per process and is
memoized; tests point ``root`` at a scratch tree to exercise
invalidation without editing the real sources.
"""

from __future__ import annotations

import hashlib
import os

__all__ = ["code_digest", "artifact_key"]

_DIGEST_MEMO: dict[str, str] = {}


def code_digest(root: str | os.PathLike | None = None) -> str:
    """SHA-256 over all ``.py`` files under ``root`` (default: this package).

    The walk is deterministic (sorted directories and files, relative
    paths mixed into the hash) and memoized per root per process.
    """
    if root is None:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    root = os.fspath(root)
    memo = _DIGEST_MEMO.get(root)
    if memo is not None:
        return memo
    hasher = hashlib.sha256()
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for fname in sorted(filenames):
            if not fname.endswith(".py"):
                continue
            path = os.path.join(dirpath, fname)
            hasher.update(os.path.relpath(path, root).encode("utf-8"))
            with open(path, "rb") as handle:
                hasher.update(handle.read())
    digest = hasher.hexdigest()
    _DIGEST_MEMO[root] = digest
    return digest


def artifact_key(
    phase: str,
    design: str,
    config: str,
    root: str | os.PathLike | None = None,
    **params,
) -> str:
    """The content address of one ``(design, phase, code-version)`` artifact."""
    parts = [code_digest(root), phase, design, config]
    parts.extend(f"{key}={params[key]!r}" for key in sorted(params))
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()
