"""Netlist optimization passes.

Lightweight logic optimization over the flat netlist, mirroring what a
synthesis frontend does before technology mapping:

* **constant folding** — nodes whose operands are all constants evaluate
  at compile time (uses the reference interpreter, so folding can never
  disagree with simulation);
* **algebraic simplification** — ``x+0``, ``x*1``, ``x*0``, ``x&0``,
  ``x|0``, ``mux(c,a,a)``, ``mux(1,a,b)``, extension-of-extension, and
  slice-of-full-width identities;
* **common subexpression elimination** — structurally identical nodes are
  merged into one object, so the synthesis model (which counts per object)
  sees the sharing real synthesis would create;
* **dead code elimination** — assigns, registers, and memories that no
  output transitively observes are dropped.

All passes preserve the interface (inputs/outputs keep their Signal
identities) and semantics; the test suite checks simulation equivalence
on random stimuli for every pass combination.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import ReproError
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .elaborate import FlatRegister, Netlist
from .ir import (
    BinOp,
    BinOpKind,
    Cat,
    Const,
    Expr,
    Ext,
    MemRead,
    Mux,
    Ref,
    Signal,
    Slice,
    UnOp,
    eval_expr,
    expr_mem_reads,
    expr_signals,
)
from .module import Memory, MemWrite

__all__ = ["optimize", "OptStats"]


@dataclass
class OptStats:
    """What the optimizer did (reported by the ablation benchmark)."""

    folded: int = 0
    simplified: int = 0
    merged: int = 0
    dead_assigns: int = 0
    dead_registers: int = 0
    dead_memories: int = 0

    def total(self) -> int:
        return (self.folded + self.simplified + self.merged
                + self.dead_assigns + self.dead_registers + self.dead_memories)


def _children(expr: Expr) -> tuple[Expr, ...]:
    if isinstance(expr, BinOp):
        return (expr.a, expr.b)
    if isinstance(expr, UnOp):
        return (expr.a,)
    if isinstance(expr, Mux):
        return (expr.sel, expr.if_true, expr.if_false)
    if isinstance(expr, Cat):
        return expr.parts
    if isinstance(expr, (Slice, Ext)):
        return (expr.a,)
    if isinstance(expr, MemRead):
        return (expr.addr,)
    return ()


def _rebuild(expr: Expr, children: tuple[Expr, ...]) -> Expr:
    if isinstance(expr, BinOp):
        return BinOp(expr.kind, children[0], children[1])
    if isinstance(expr, UnOp):
        return UnOp(expr.kind, children[0])
    if isinstance(expr, Mux):
        return Mux(children[0], children[1], children[2])
    if isinstance(expr, Cat):
        return Cat(children)
    if isinstance(expr, Slice):
        return Slice(children[0], expr.hi, expr.lo)
    if isinstance(expr, Ext):
        return Ext(children[0], expr.width, expr.signed)
    if isinstance(expr, MemRead):
        return MemRead(expr.memory, children[0])
    return expr


class _Rewriter:
    """One bottom-up rewrite over the expression DAG, with sharing."""

    def __init__(self, fold: bool, simplify: bool, cse: bool,
                 stats: OptStats, mem_map: dict | None = None) -> None:
        self._fold = fold
        self._simplify = simplify
        self._cse = cse
        self._stats = stats
        self._mem_map = mem_map or {}
        self._memo: dict[int, Expr] = {}
        self._canon: dict[tuple, Expr] = {}

    def rewrite(self, expr: Expr) -> Expr:
        cached = self._memo.get(id(expr))
        if cached is not None:
            return cached
        children = tuple(self.rewrite(c) for c in _children(expr))
        if isinstance(expr, MemRead):
            # Always rebuild reads so they point at the cloned memory.
            memory = self._mem_map.get(expr.memory, expr.memory)
            node: Expr = MemRead(memory, children[0])
        elif (all(a is b for a, b in zip(children, _children(expr)))
                and len(children) == len(_children(expr))):
            node = expr
        else:
            node = _rebuild(expr, children)
        if self._fold:
            node = self._try_fold(node)
        if self._simplify:
            node = self._try_simplify(node)
        if self._cse:
            node = self._canonicalize(node)
        self._memo[id(expr)] = node
        return node

    # -- constant folding ---------------------------------------------
    def _try_fold(self, expr: Expr) -> Expr:
        if isinstance(expr, (Const, Ref)):
            return expr
        if isinstance(expr, MemRead):
            return expr
        if all(isinstance(c, Const) for c in _children(expr)):
            value = eval_expr(expr, lambda _sig: 0)
            self._stats.folded += 1
            return Const(value, expr.width)
        return expr

    # -- algebraic identities ---------------------------------------------
    def _try_simplify(self, expr: Expr) -> Expr:
        out = self._simplify_node(expr)
        if out is not expr:
            self._stats.simplified += 1
        return out

    def _simplify_node(self, expr: Expr) -> Expr:
        if isinstance(expr, BinOp):
            a, b = expr.a, expr.b
            kind = expr.kind
            zero_b = isinstance(b, Const) and b.value == 0
            zero_a = isinstance(a, Const) and a.value == 0
            if kind is BinOpKind.ADD:
                if zero_b:
                    return a
                if zero_a:
                    return b
            if kind is BinOpKind.SUB and zero_b:
                return a
            if kind in (BinOpKind.MUL, BinOpKind.MULS):
                if (zero_a or zero_b):
                    return Const(0, expr.width)
            if kind is BinOpKind.AND:
                if zero_a or zero_b:
                    return Const(0, expr.width)
                ones = (1 << expr.width) - 1
                if isinstance(b, Const) and b.value == ones:
                    return a
                if isinstance(a, Const) and a.value == ones:
                    return b
            if kind is BinOpKind.OR:
                if zero_b:
                    return a
                if zero_a:
                    return b
            if kind is BinOpKind.XOR:
                if zero_b:
                    return a
                if zero_a:
                    return b
            if kind in (BinOpKind.SHL, BinOpKind.LSHR, BinOpKind.ASHR) and zero_b:
                return a
        elif isinstance(expr, Mux):
            if isinstance(expr.sel, Const):
                return expr.if_true if expr.sel.value else expr.if_false
            if expr.if_true is expr.if_false:
                return expr.if_true
        elif isinstance(expr, Ext):
            if expr.width == expr.a.width:
                return expr.a
            inner = expr.a
            if isinstance(inner, Ext) and inner.signed == expr.signed:
                return Ext(inner.a, expr.width, expr.signed)
        elif isinstance(expr, Slice):
            if expr.lo == 0 and expr.hi == expr.a.width - 1:
                return expr.a
            inner = expr.a
            if isinstance(inner, Slice):
                return Slice(inner.a, inner.lo + expr.hi, inner.lo + expr.lo)
        elif isinstance(expr, Cat) and len(expr.parts) == 1:
            return expr.parts[0]
        return expr

    # -- structural hashing -------------------------------------------------
    def _key(self, expr: Expr) -> tuple:
        if isinstance(expr, Const):
            return ("const", expr.value, expr.width)
        if isinstance(expr, Ref):
            return ("ref", id(expr.signal))
        if isinstance(expr, BinOp):
            return ("bin", expr.kind, id(expr.a), id(expr.b))
        if isinstance(expr, UnOp):
            return ("un", expr.kind, id(expr.a))
        if isinstance(expr, Mux):
            return ("mux", id(expr.sel), id(expr.if_true), id(expr.if_false))
        if isinstance(expr, Cat):
            return ("cat",) + tuple(id(p) for p in expr.parts)
        if isinstance(expr, Slice):
            return ("slice", id(expr.a), expr.hi, expr.lo)
        if isinstance(expr, Ext):
            return ("ext", id(expr.a), expr.width, expr.signed)
        if isinstance(expr, MemRead):
            return ("memread", id(expr.memory), id(expr.addr))
        raise ReproError(f"unhashable node {type(expr).__name__}")

    def _canonicalize(self, expr: Expr) -> Expr:
        key = self._key(expr)
        existing = self._canon.get(key)
        if existing is not None:
            if existing is not expr:
                self._stats.merged += 1
            return existing
        self._canon[key] = expr
        return expr


def optimize(
    netlist: Netlist,
    fold: bool = True,
    simplify: bool = True,
    cse: bool = True,
    dce: bool = True,
) -> tuple[Netlist, OptStats]:
    """Run the selected passes; returns (new netlist, statistics)."""
    with obs_trace.span("optimize", netlist=netlist.name) as span:
        return _optimize_traced(netlist, fold, simplify, cse, dce, span)


def _optimize_traced(netlist, fold, simplify, cse, dce, span):
    stats = OptStats()
    memories: list[Memory] = []
    mem_map: dict[Memory, Memory] = {}
    for mem in netlist.memories:
        clone = Memory(mem.name, mem.depth, mem.width,
                       max_read_ports=mem.max_read_ports,
                       max_write_ports=mem.max_write_ports,
                       init=list(mem.init))
        memories.append(clone)
        mem_map[mem] = clone
    rewriter = _Rewriter(fold, simplify, cse, stats, mem_map)

    assigns = [(sig, rewriter.rewrite(expr)) for sig, expr in netlist.assigns]
    registers = [
        FlatRegister(
            reg.signal,
            rewriter.rewrite(reg.next),
            reg.init,
            None if reg.en is None else rewriter.rewrite(reg.en),
        )
        for reg in netlist.registers
    ]
    for mem, clone in mem_map.items():
        for write in mem.writes:
            clone.writes.append(MemWrite(
                rewriter.rewrite(write.en),
                rewriter.rewrite(write.addr),
                rewriter.rewrite(write.data),
            ))

    if obs_trace.enabled():
        obs_trace.event("optimize.rewrite", folded=stats.folded,
                        simplified=stats.simplified, merged=stats.merged)

    if dce:
        with obs_trace.span("optimize.dce", netlist=netlist.name):
            assigns, registers, memories, stats = _dce(
                netlist, assigns, registers, memories, stats
            )

    optimized = Netlist(
        name=netlist.name,
        inputs=list(netlist.inputs),
        outputs=list(netlist.outputs),
        assigns=assigns,
        registers=registers,
        memories=memories,
    )
    optimized.validate()
    if obs_trace.enabled():
        obs_metrics.inc("optimize.runs")
        obs_metrics.inc("optimize.folded", stats.folded)
        obs_metrics.inc("optimize.simplified", stats.simplified)
        obs_metrics.inc("optimize.merged", stats.merged)
        obs_metrics.inc("optimize.dead", stats.dead_assigns
                        + stats.dead_registers + stats.dead_memories)
        span.set(assigns_in=len(netlist.assigns), assigns_out=len(assigns),
                 total=stats.total())
    return optimized, stats


def _dce(netlist, assigns, registers, memories, stats):
    """Drop logic no output can observe."""
    driver: dict[Signal, Expr] = {sig: expr for sig, expr in assigns}
    reg_of: dict[Signal, FlatRegister] = {r.signal: r for r in registers}

    live: set[Signal] = set()
    live_mems: set[Memory] = set()
    worklist: list[Signal] = list(netlist.outputs)

    def mark_expr(expr: Expr) -> None:
        for sig in expr_signals(expr):
            if sig not in live:
                worklist.append(sig)
        for node in expr_mem_reads(expr):
            if node.memory not in live_mems:
                live_mems.add(node.memory)  # type: ignore[arg-type]
                for write in node.memory.writes:  # type: ignore[attr-defined]
                    mark_expr(write.en)
                    mark_expr(write.addr)
                    mark_expr(write.data)

    while worklist:
        sig = worklist.pop()
        if sig in live:
            continue
        live.add(sig)
        expr = driver.get(sig)
        if expr is not None:
            mark_expr(expr)
        reg = reg_of.get(sig)
        if reg is not None:
            mark_expr(reg.next)
            if reg.en is not None:
                mark_expr(reg.en)

    new_assigns = [(sig, expr) for sig, expr in assigns if sig in live]
    new_registers = [reg for reg in registers if reg.signal in live]
    new_memories = [mem for mem in memories if mem in live_mems]
    stats.dead_assigns += len(assigns) - len(new_assigns)
    stats.dead_registers += len(registers) - len(new_registers)
    stats.dead_memories += len(memories) - len(new_memories)
    return new_assigns, new_registers, new_memories, stats
