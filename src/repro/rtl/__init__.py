"""Register-transfer-level intermediate representation.

The RTL layer is the meeting point of the framework: every frontend lowers
to it, and the simulator, synthesis model, and Verilog backend consume it.

* :mod:`repro.rtl.ir` — expression nodes and their semantics;
* :mod:`repro.rtl.ops` — smart constructors used by frontends;
* :mod:`repro.rtl.module` — hierarchical modules, registers, memories;
* :mod:`repro.rtl.elaborate` — flattening into a validated netlist.
"""

from . import ops
from .elaborate import FlatRegister, Netlist, elaborate, substitute
from .optimize import OptStats, optimize
from .ir import (
    BinOp,
    BinOpKind,
    Cat,
    Const,
    Expr,
    Ext,
    MemRead,
    Mux,
    Ref,
    Signal,
    Slice,
    UnOp,
    UnOpKind,
    emit_py,
    eval_expr,
    expr_mem_reads,
    expr_signals,
    expr_size,
)
from .module import Instance, Memory, MemWrite, Module, Register

__all__ = [
    "ops",
    "Signal",
    "Expr",
    "Const",
    "Ref",
    "BinOp",
    "BinOpKind",
    "UnOp",
    "UnOpKind",
    "Mux",
    "Cat",
    "Slice",
    "Ext",
    "MemRead",
    "eval_expr",
    "emit_py",
    "expr_signals",
    "expr_mem_reads",
    "expr_size",
    "Module",
    "Register",
    "Memory",
    "MemWrite",
    "Instance",
    "Netlist",
    "FlatRegister",
    "elaborate",
    "substitute",
    "optimize",
    "OptStats",
]
