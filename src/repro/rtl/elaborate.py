"""Flattening a module hierarchy into a netlist.

Elaboration resolves instances by cloning child signals into the parent's
namespace (dotted hierarchical names), substituting port connections, and
accumulating everything into one flat :class:`Netlist`:

* ``assigns``    — combinational ``signal := expr`` pairs;
* ``registers``  — clocked state elements;
* ``memories``   — word-addressed memories with their write ports.

The netlist is validated structurally (every signal driven exactly once,
nothing read while undriven, memory port limits respected) and the
combinational assignments are levelized into evaluation order, detecting
combinational loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import CombinationalLoopError, DriverError, ElaborationError
from ..core.naming import Namespace
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .ir import (
    BinOp,
    Cat,
    Const,
    Expr,
    Ext,
    MemRead,
    Mux,
    Ref,
    Signal,
    Slice,
    UnOp,
    expr_mem_reads,
    expr_signals,
)
from .module import Instance, Memory, MemWrite, Module, Register

__all__ = ["Netlist", "FlatRegister", "elaborate", "substitute"]


@dataclass(eq=False)
class FlatRegister:
    """A register in the flat netlist."""

    signal: Signal
    next: Expr
    init: int
    en: Expr | None = None


@dataclass(eq=False)
class Netlist:
    """A flat, validated, single-clock synchronous netlist."""

    name: str
    inputs: list[Signal] = field(default_factory=list)
    outputs: list[Signal] = field(default_factory=list)
    assigns: list[tuple[Signal, Expr]] = field(default_factory=list)
    registers: list[FlatRegister] = field(default_factory=list)
    memories: list[Memory] = field(default_factory=list)

    # ------------------------------------------------------------------
    def signals(self) -> list[Signal]:
        """Every signal in the netlist, in a stable order."""
        seen: dict[Signal, None] = {}
        for sig in self.inputs:
            seen.setdefault(sig)
        for sig, _expr in self.assigns:
            seen.setdefault(sig)
        for reg in self.registers:
            seen.setdefault(reg.signal)
        for sig in self.outputs:
            seen.setdefault(sig)
        # signals only ever read (should not exist after validation)
        for _sig, expr in self.assigns:
            for read in expr_signals(expr):
                seen.setdefault(read)
        for reg in self.registers:
            for read in expr_signals(reg.next):
                seen.setdefault(read)
            if reg.en is not None:
                for read in expr_signals(reg.en):
                    seen.setdefault(read)
        for mem in self.memories:
            for write in mem.writes:
                for expr in (write.en, write.addr, write.data):
                    for read in expr_signals(expr):
                        seen.setdefault(read)
        return list(seen)

    def validate(self) -> None:
        """Check single-driver and no-floating-read structural rules."""
        drivers: dict[Signal, str] = {}
        for sig in self.inputs:
            drivers[sig] = "input"
        for sig, _expr in self.assigns:
            if sig in drivers:
                raise DriverError(f"{self.name}: {sig.name} driven more than once")
            drivers[sig] = "assign"
        for reg in self.registers:
            if reg.signal in drivers:
                raise DriverError(f"{self.name}: {reg.signal.name} driven more than once")
            drivers[reg.signal] = "register"

        def check_reads(expr: Expr, context: str) -> None:
            for read in expr_signals(expr):
                if read not in drivers:
                    raise DriverError(
                        f"{self.name}: {read.name} read by {context} but never driven"
                    )

        for sig, expr in self.assigns:
            check_reads(expr, f"assign {sig.name}")
        for reg in self.registers:
            check_reads(reg.next, f"register {reg.signal.name}")
            if reg.en is not None:
                check_reads(reg.en, f"register {reg.signal.name} enable")
        for mem in self.memories:
            if len(mem.writes) > mem.max_write_ports:
                raise ElaborationError(
                    f"{self.name}: memory {mem.name} exceeds write port limit"
                )
            for write in mem.writes:
                for expr in (write.en, write.addr, write.data):
                    check_reads(expr, f"memory {mem.name} write")
        for sig in self.outputs:
            if sig not in drivers:
                raise DriverError(f"{self.name}: output {sig.name} is never driven")
        self._check_mem_read_ports()

    def _check_mem_read_ports(self) -> None:
        """Count distinct read addresses per memory against the port limit.

        Distinct :class:`MemRead` nodes with identical address expressions
        can share a physical port after CSE, so we count unique address
        *objects* — a conservative under-approximation that still catches
        the Bambu-style single-channel violations the tests exercise.
        """
        reads: dict[Memory, set[int]] = {}
        def scan(expr: Expr) -> None:
            for node in expr_mem_reads(expr):
                reads.setdefault(node.memory, set()).add(id(node.addr))  # type: ignore[arg-type]

        for _sig, expr in self.assigns:
            scan(expr)
        for reg in self.registers:
            scan(reg.next)
            if reg.en is not None:
                scan(reg.en)
        for mem, addrs in reads.items():
            if len(addrs) > mem.max_read_ports * 8:
                # The factor of 8 reflects time-multiplexing headroom the
                # synthesis model accounts for; beyond it the design is
                # structurally unmappable.
                raise ElaborationError(
                    f"{self.name}: memory {mem.name} has {len(addrs)} concurrent "
                    f"reads for {mem.max_read_ports} ports"
                )

    def comb_order(self) -> list[tuple[Signal, Expr]]:
        """Topologically sort combinational assigns; detect loops."""
        index_of = {sig: i for i, (sig, _e) in enumerate(self.assigns)}
        n = len(self.assigns)
        dependents: list[list[int]] = [[] for _ in range(n)]
        in_degree = [0] * n
        for i, (_sig, expr) in enumerate(self.assigns):
            for read in expr_signals(expr):
                j = index_of.get(read)
                if j is not None:
                    dependents[j].append(i)
                    in_degree[i] += 1
        ready = [i for i in range(n) if in_degree[i] == 0]
        order: list[int] = []
        while ready:
            i = ready.pop()
            order.append(i)
            for j in dependents[i]:
                in_degree[j] -= 1
                if in_degree[j] == 0:
                    ready.append(j)
        if len(order) != n:
            stuck = [self.assigns[i][0].name for i in range(n) if in_degree[i] > 0]
            raise CombinationalLoopError(
                f"{self.name}: combinational loop through {stuck[:8]}"
            )
        return [self.assigns[i] for i in order]

    # ------------------------------------------------------------------
    @property
    def n_io(self) -> int:
        """Port bit count plus clock and reset (the paper's N_IO)."""
        return sum(s.width for s in self.inputs + self.outputs) + 2

    def stats(self) -> dict[str, int]:
        """Structural size summary used by reports and tests."""
        return {
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "assigns": len(self.assigns),
            "registers": len(self.registers),
            "reg_bits": sum(r.signal.width for r in self.registers),
            "memories": len(self.memories),
            "mem_bits": sum(m.size_bits for m in self.memories),
            "io_bits": self.n_io,
        }


# ----------------------------------------------------------------------
# expression substitution
# ----------------------------------------------------------------------

def substitute(
    expr: Expr,
    sig_map: dict[Signal, Expr],
    mem_map: dict[Memory, Memory] | None = None,
    memo: dict[int, Expr] | None = None,
) -> Expr:
    """Rewrite ``expr``, replacing signal reads and memory references.

    Signals missing from ``sig_map`` are left untouched (used by local
    rewrites); memories missing from ``mem_map`` likewise.  Passing one
    ``memo`` dict across several calls preserves expression-DAG sharing:
    a node object reused in many places rewrites to one object, so the
    synthesis model keeps seeing one physical circuit with fan-out.
    """
    if memo is None:
        memo = {}
    key = id(expr)
    cached = memo.get(key)
    if cached is not None:
        return cached
    result = _substitute_uncached(expr, sig_map, mem_map, memo)
    memo[key] = result
    return result


def _substitute_uncached(
    expr: Expr,
    sig_map: dict[Signal, Expr],
    mem_map: dict[Memory, Memory] | None,
    memo: dict[int, Expr],
) -> Expr:
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Ref):
        return sig_map.get(expr.signal, expr)
    if isinstance(expr, BinOp):
        return BinOp(
            expr.kind,
            substitute(expr.a, sig_map, mem_map, memo),
            substitute(expr.b, sig_map, mem_map, memo),
        )
    if isinstance(expr, UnOp):
        return UnOp(expr.kind, substitute(expr.a, sig_map, mem_map, memo))
    if isinstance(expr, Mux):
        return Mux(
            substitute(expr.sel, sig_map, mem_map, memo),
            substitute(expr.if_true, sig_map, mem_map, memo),
            substitute(expr.if_false, sig_map, mem_map, memo),
        )
    if isinstance(expr, Cat):
        return Cat(tuple(substitute(p, sig_map, mem_map, memo) for p in expr.parts))
    if isinstance(expr, Slice):
        return Slice(substitute(expr.a, sig_map, mem_map, memo), expr.hi, expr.lo)
    if isinstance(expr, Ext):
        return Ext(substitute(expr.a, sig_map, mem_map, memo), expr.width, expr.signed)
    if isinstance(expr, MemRead):
        memory = expr.memory
        if mem_map is not None:
            memory = mem_map.get(memory, memory)  # type: ignore[arg-type]
        return MemRead(memory, substitute(expr.addr, sig_map, mem_map, memo))
    raise TypeError(f"unknown expression node {type(expr).__name__}")


# ----------------------------------------------------------------------
# flattening
# ----------------------------------------------------------------------

def elaborate(top: Module) -> Netlist:
    """Flatten ``top`` and its instances into a validated :class:`Netlist`."""
    with obs_trace.span("elaborate", module=top.name) as sp:
        netlist = Netlist(name=top.name)
        ns = Namespace()
        # Top-level ports keep their identity so testbenches can use them.
        top_map: dict[Signal, Expr] = {}
        for sig in top.inputs:
            ns.reserve(sig.name)
            top_map[sig] = Ref(sig)
            netlist.inputs.append(sig)
        for sig in top.outputs:
            ns.reserve(sig.name)
            top_map[sig] = Ref(sig)
            netlist.outputs.append(sig)
        _flatten(top, "", top_map, netlist, ns, keep_names=True)
        netlist.validate()
        if obs_trace.enabled():
            obs_metrics.inc("elaborate.runs")
            obs_metrics.inc("elaborate.nodes", len(netlist.assigns))
            obs_metrics.inc("elaborate.registers", len(netlist.registers))
            sp.set(assigns=len(netlist.assigns),
                   registers=len(netlist.registers),
                   memories=len(netlist.memories))
        return netlist


def _flat_target(sig: Signal, sig_map: dict[Signal, Expr], context: str) -> Signal:
    expr = sig_map[sig]
    if not isinstance(expr, Ref):
        raise ElaborationError(
            f"{context}: {sig.name} cannot be driven (it is bound to an expression)"
        )
    return expr.signal


def _flatten(
    module: Module,
    prefix: str,
    sig_map: dict[Signal, Expr],
    netlist: Netlist,
    ns: Namespace,
    keep_names: bool = False,
) -> None:
    memo: dict[int, Expr] = {}
    # Clone local signals (wires, outputs, register outputs) not yet bound.
    local = list(module.wires) + list(module.outputs) + [
        r.signal for r in module.registers
    ]
    for sig in local:
        if sig not in sig_map:
            flat = Signal(ns.fresh(prefix + sig.name), sig.width)
            sig_map[sig] = Ref(flat)
    # Clone memories.
    mem_map: dict[Memory, Memory] = {}
    for mem in module.memories:
        flat_mem = Memory(
            ns.fresh(prefix + mem.name),
            mem.depth,
            mem.width,
            max_read_ports=mem.max_read_ports,
            max_write_ports=mem.max_write_ports,
            init=list(mem.init),
        )
        mem_map[mem] = flat_mem
        netlist.memories.append(flat_mem)
    # Combinational assignments.
    for target, expr in module.assigns.items():
        flat_sig = _flat_target(target, sig_map, module.name)
        netlist.assigns.append((flat_sig, substitute(expr, sig_map, mem_map, memo)))
    # Registers.
    for reg in module.registers:
        if reg.next is None:
            raise ElaborationError(
                f"{module.name}: register {reg.signal.name} has no next value"
            )
        netlist.registers.append(
            FlatRegister(
                _flat_target(reg.signal, sig_map, module.name),
                substitute(reg.next, sig_map, mem_map, memo),
                reg.init,
                None if reg.en is None else substitute(reg.en, sig_map, mem_map, memo),
            )
        )
    # Memory write ports.
    for mem in module.memories:
        flat_mem = mem_map[mem]
        for write in mem.writes:
            flat_mem.writes.append(
                MemWrite(
                    substitute(write.en, sig_map, mem_map, memo),
                    substitute(write.addr, sig_map, mem_map, memo),
                    substitute(write.data, sig_map, mem_map, memo),
                )
            )
    # Instances: bind child ports and recurse.
    for inst in module.instances:
        child = inst.module
        child_map: dict[Signal, Expr] = {}
        out_ports = {sig.name: sig for sig in child.outputs}
        in_ports = {sig.name: sig for sig in child.inputs}
        for port_name, conn in inst.conns.items():
            if port_name in in_ports:
                bound = substitute(
                    conn if isinstance(conn, Expr) else Ref(conn), sig_map, mem_map
                )
                child_map[in_ports[port_name]] = bound
            else:
                # Output: the connected parent signal becomes the flat target.
                parent_sig = conn  # validated to be a Signal at construction
                child_map[out_ports[port_name]] = sig_map[parent_sig]  # type: ignore[index]
        _flatten(child, prefix + inst.name + ".", child_map, netlist, ns)
