"""Hierarchical RTL modules.

A :class:`Module` bundles ports, wires, registers, memories, combinational
assignments, and instances of other modules.  It is a *construction* API:
frontends build modules, :mod:`repro.rtl.elaborate` flattens them into a
:class:`~repro.rtl.elaborate.Netlist`, and the simulator / synthesis model /
Verilog emitter all consume the flat form.

All sequential elements share one implicit clock and one implicit synchronous
reset, matching the single-clock designs in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import DriverError, ElaborationError, WidthError
from ..core.naming import Namespace
from .ir import Expr, Ref, Signal
from .ops import ExprLike, as_expr

__all__ = ["Module", "Register", "Memory", "MemWrite", "Instance", "PortDir"]


@dataclass(eq=False)
class Register:
    """A D flip-flop bank: ``signal`` takes ``next`` at each clock edge.

    ``en`` (optional) gates the update; ``init`` is the synchronous reset
    value.  ``next`` may be filled in after construction (feedback loops).
    """

    signal: Signal
    next: Expr | None
    init: int
    en: Expr | None = None


@dataclass(eq=False)
class MemWrite:
    """One synchronous write port: when ``en`` is 1, ``mem[addr] = data``."""

    en: Expr
    addr: Expr
    data: Expr


@dataclass(eq=False)
class Memory:
    """A word-addressed memory with synchronous writes and async reads.

    Reads are combinational :class:`~repro.rtl.ir.MemRead` expressions.
    ``max_read_ports`` / ``max_write_ports`` model the physical port limits
    of the mapped resource (the Bambu ``channels-type`` knob); elaboration
    checks them.
    """

    name: str
    depth: int
    width: int
    max_read_ports: int = 2
    max_write_ports: int = 1
    init: list[int] = field(default_factory=list)
    writes: list[MemWrite] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.depth <= 0 or self.width <= 0:
            raise WidthError(f"memory {self.name!r} needs positive depth and width")

    @property
    def size_bits(self) -> int:
        return self.depth * self.width


@dataclass(eq=False)
class Instance:
    """An instantiation of ``module`` inside a parent module.

    ``conns`` maps the child's port names to parent-side expressions (for
    child inputs) or parent signals (for child outputs, which the instance
    drives).
    """

    module: "Module"
    name: str
    conns: dict[str, Expr | Signal]


class PortDir:
    IN = "in"
    OUT = "out"


class Module:
    """A synthesizable hardware module under construction."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.inputs: list[Signal] = []
        self.outputs: list[Signal] = []
        self.wires: list[Signal] = []
        self.assigns: dict[Signal, Expr] = {}
        self.registers: list[Register] = []
        self.memories: list[Memory] = []
        self.instances: list[Instance] = []
        self._ns = Namespace()
        self._reg_of: dict[Signal, Register] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def input(self, name: str, width: int) -> Signal:
        """Declare an input port and return its signal."""
        sig = Signal(self._ns.fresh(name), width)
        self.inputs.append(sig)
        return sig

    def output(self, name: str, width: int) -> Signal:
        """Declare an output port and return its signal."""
        sig = Signal(self._ns.fresh(name), width)
        self.outputs.append(sig)
        return sig

    def wire(self, name: str, width: int) -> Signal:
        """Declare an internal wire (must be assigned exactly once)."""
        sig = Signal(self._ns.fresh(name), width)
        self.wires.append(sig)
        return sig

    def assign(self, target: Signal, expr: ExprLike) -> None:
        """Drive ``target`` combinationally with ``expr``."""
        expr = as_expr(expr, target.width)
        if target in self.assigns or target in self._reg_of:
            raise DriverError(f"{self.name}.{target.name} is already driven")
        if expr.width != target.width:
            raise WidthError(
                f"assign to {self.name}.{target.name}: "
                f"width {expr.width} != {target.width}"
            )
        self.assigns[target] = expr

    def connect(self, name: str, width: int, expr: ExprLike) -> Signal:
        """Declare a wire and drive it in one step."""
        sig = self.wire(name, width)
        self.assign(sig, as_expr(expr, width))
        return sig

    def reg(
        self,
        name: str,
        width: int,
        next: ExprLike | None = None,
        init: int = 0,
        en: ExprLike | None = None,
    ) -> Signal:
        """Declare a register; returns its output signal.

        ``next`` may be omitted and supplied later via :meth:`set_next`
        (needed for feedback through the register).
        """
        sig = Signal(self._ns.fresh(name), width)
        next_expr = None if next is None else as_expr(next, width)
        if next_expr is not None and next_expr.width != width:
            raise WidthError(
                f"register {self.name}.{name}: next width {next_expr.width} != {width}"
            )
        en_expr = None if en is None else as_expr(en, 1)
        if en_expr is not None and en_expr.width != 1:
            raise WidthError(f"register {self.name}.{name}: enable must be 1 bit")
        register = Register(sig, next_expr, init & ((1 << width) - 1), en_expr)
        self.registers.append(register)
        self._reg_of[sig] = register
        return sig

    def set_next(self, reg_signal: Signal, next: ExprLike, en: ExprLike | None = None) -> None:
        """Supply the next-value expression of a previously declared register."""
        register = self._reg_of.get(reg_signal)
        if register is None:
            raise ElaborationError(f"{reg_signal.name} is not a register of {self.name}")
        if register.next is not None:
            raise DriverError(f"register {self.name}.{reg_signal.name} already has a next value")
        next_expr = as_expr(next, reg_signal.width)
        if next_expr.width != reg_signal.width:
            raise WidthError(
                f"register {self.name}.{reg_signal.name}: "
                f"next width {next_expr.width} != {reg_signal.width}"
            )
        register.next = next_expr
        if en is not None:
            register.en = as_expr(en, 1)

    def memory(
        self,
        name: str,
        depth: int,
        width: int,
        *,
        max_read_ports: int = 2,
        max_write_ports: int = 1,
        init: list[int] | None = None,
    ) -> Memory:
        """Declare a memory block."""
        mem = Memory(
            self._ns.fresh(name),
            depth,
            width,
            max_read_ports=max_read_ports,
            max_write_ports=max_write_ports,
            init=list(init or []),
        )
        self.memories.append(mem)
        return mem

    def mem_write(self, mem: Memory, en: ExprLike, addr: ExprLike, data: ExprLike) -> None:
        """Attach a synchronous write port to ``mem``."""
        if mem not in self.memories:
            raise ElaborationError(f"memory {mem.name} does not belong to {self.name}")
        write = MemWrite(as_expr(en, 1), as_expr(addr, 32), as_expr(data, mem.width))
        if write.data.width != mem.width:
            raise WidthError(
                f"memory {mem.name}: write data width {write.data.width} != {mem.width}"
            )
        mem.writes.append(write)
        if len(mem.writes) > mem.max_write_ports:
            raise ElaborationError(
                f"memory {mem.name}: {len(mem.writes)} write ports exceed the "
                f"limit of {mem.max_write_ports}"
            )

    def instance(self, child: "Module", name: str, **conns: Expr | Signal | int) -> Instance:
        """Instantiate ``child``; keyword arguments connect its ports.

        Child inputs accept any expression (integers are sized to the port);
        child outputs must be connected to a parent :class:`Signal` that the
        instance will drive.
        """
        ports = {sig.name: sig for sig in child.inputs + child.outputs}
        out_names = {sig.name for sig in child.outputs}
        resolved: dict[str, Expr | Signal] = {}
        for port_name, conn in conns.items():
            port = ports.get(port_name)
            if port is None:
                raise ElaborationError(f"{child.name} has no port {port_name!r}")
            if port_name in out_names:
                if not isinstance(conn, Signal):
                    raise ElaborationError(
                        f"output port {child.name}.{port_name} must connect to a Signal"
                    )
                if conn.width != port.width:
                    raise WidthError(
                        f"output {child.name}.{port_name}: width "
                        f"{port.width} != {conn.width}"
                    )
                resolved[port_name] = conn
            else:
                expr = as_expr(conn, port.width)
                if expr.width != port.width:
                    raise WidthError(
                        f"input {child.name}.{port_name}: width "
                        f"{expr.width} != {port.width}"
                    )
                resolved[port_name] = expr
        missing = [name for name in ports if name not in resolved]
        if missing:
            raise ElaborationError(
                f"instance {name} of {child.name}: unconnected ports {missing}"
            )
        inst = Instance(child, self._ns.fresh(name), resolved)
        self.instances.append(inst)
        return inst

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def port_bits(self) -> int:
        """Total bit count of the module's ports (the paper's N_IO basis)."""
        return sum(sig.width for sig in self.inputs + self.outputs)

    def read(self, sig: Signal) -> Ref:
        """Convenience: an expression reading ``sig``."""
        return Ref(sig)

    def __repr__(self) -> str:
        return (
            f"Module({self.name!r}, {len(self.inputs)} in, {len(self.outputs)} out, "
            f"{len(self.registers)} regs, {len(self.instances)} insts)"
        )
