"""Expression IR for register-transfer-level hardware.

Every expression node carries an explicit result ``width``; nothing is
inferred at this level (frontends implement their own width rules and lower
to this IR).  Semantics are defined over unsigned bit patterns with explicit
signed variants where the interpretation matters (``MULS``, ``SLT``,
``ASHR``, ``SEXT``).

Two evaluators are provided and kept in lock-step by the test suite:

* :func:`eval_expr` — a straightforward recursive interpreter, used as the
  reference semantics and for cross-checking;
* :func:`emit_py` — emits a Python expression string used by the compiled
  simulator (:mod:`repro.sim`) for speed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from ..core.bits import to_signed
from ..core.errors import WidthError

__all__ = [
    "BinOpKind",
    "UnOpKind",
    "Expr",
    "Const",
    "Ref",
    "BinOp",
    "UnOp",
    "Mux",
    "Cat",
    "Slice",
    "Ext",
    "MemRead",
    "Signal",
    "eval_expr",
    "emit_py",
    "expr_signals",
    "expr_mem_reads",
    "expr_size",
]


class BinOpKind(enum.Enum):
    """Binary operator kinds; the comment gives the width rule."""

    ADD = "add"      # (W, W) -> W, wrap
    SUB = "sub"      # (W, W) -> W, wrap
    MUL = "mul"      # (Wa, Wb) -> Wa + Wb, unsigned full product
    MULS = "muls"    # (Wa, Wb) -> Wa + Wb, signed full product
    AND = "and"      # (W, W) -> W
    OR = "or"        # (W, W) -> W
    XOR = "xor"      # (W, W) -> W
    SHL = "shl"      # (W, any) -> W, zero fill
    LSHR = "lshr"    # (W, any) -> W, zero fill
    ASHR = "ashr"    # (W, any) -> W, sign fill
    EQ = "eq"        # (W, W) -> 1
    NE = "ne"        # (W, W) -> 1
    ULT = "ult"      # (W, W) -> 1
    ULE = "ule"      # (W, W) -> 1
    UGT = "ugt"      # (W, W) -> 1
    UGE = "uge"      # (W, W) -> 1
    SLT = "slt"      # (W, W) -> 1, two's complement
    SLE = "sle"      # (W, W) -> 1
    SGT = "sgt"      # (W, W) -> 1
    SGE = "sge"      # (W, W) -> 1


class UnOpKind(enum.Enum):
    NOT = "not"      # W -> W, bitwise complement
    NEG = "neg"      # W -> W, two's complement negate
    REDOR = "redor"  # W -> 1, reduction OR
    REDAND = "redand"  # W -> 1, reduction AND
    REDXOR = "redxor"  # W -> 1, reduction XOR

_SAME_WIDTH_BINOPS = {
    BinOpKind.ADD, BinOpKind.SUB, BinOpKind.AND, BinOpKind.OR, BinOpKind.XOR,
    BinOpKind.EQ, BinOpKind.NE, BinOpKind.ULT, BinOpKind.ULE, BinOpKind.UGT,
    BinOpKind.UGE, BinOpKind.SLT, BinOpKind.SLE, BinOpKind.SGT, BinOpKind.SGE,
}
_COMPARE_BINOPS = {
    BinOpKind.EQ, BinOpKind.NE, BinOpKind.ULT, BinOpKind.ULE, BinOpKind.UGT,
    BinOpKind.UGE, BinOpKind.SLT, BinOpKind.SLE, BinOpKind.SGT, BinOpKind.SGE,
}
_SHIFT_BINOPS = {BinOpKind.SHL, BinOpKind.LSHR, BinOpKind.ASHR}
_MUL_BINOPS = {BinOpKind.MUL, BinOpKind.MULS}


@dataclass(frozen=True, eq=False)
class Signal:
    """A named wire of fixed width.

    Signals are created through :class:`repro.rtl.module.Module`; identity
    (not name) distinguishes them, so two modules may both have a ``data``
    signal without ambiguity.
    """

    name: str
    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise WidthError(f"signal {self.name!r} must have positive width")

    def __repr__(self) -> str:
        return f"Signal({self.name!r}, {self.width})"


class Expr:
    """Base class for expression nodes.  All nodes expose ``.width``."""

    __slots__ = ()
    width: int


@dataclass(frozen=True, eq=False)
class Const(Expr):
    """An integer literal of explicit width (stored masked, unsigned)."""

    value: int
    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise WidthError("Const width must be positive")
        object.__setattr__(self, "value", self.value & ((1 << self.width) - 1))


@dataclass(frozen=True, eq=False)
class Ref(Expr):
    """A reference to a signal's current value."""

    signal: Signal

    @property
    def width(self) -> int:
        return self.signal.width


@dataclass(frozen=True, eq=False)
class BinOp(Expr):
    kind: BinOpKind
    a: Expr
    b: Expr
    width: int = field(init=False)

    def __post_init__(self) -> None:
        kind, a, b = self.kind, self.a, self.b
        if kind in _SAME_WIDTH_BINOPS and a.width != b.width:
            raise WidthError(
                f"{kind.value} operand widths differ: {a.width} vs {b.width}"
            )
        if kind in _COMPARE_BINOPS:
            width = 1
        elif kind in _MUL_BINOPS:
            width = a.width + b.width
        else:  # ADD/SUB/logic/shift keep the left operand's width
            width = a.width
        object.__setattr__(self, "width", width)


@dataclass(frozen=True, eq=False)
class UnOp(Expr):
    kind: UnOpKind
    a: Expr
    width: int = field(init=False)

    def __post_init__(self) -> None:
        width = 1 if self.kind in (UnOpKind.REDOR, UnOpKind.REDAND, UnOpKind.REDXOR) else self.a.width
        object.__setattr__(self, "width", width)


@dataclass(frozen=True, eq=False)
class Mux(Expr):
    """``sel ? if_true : if_false`` — ``sel`` is 1 bit, arms share a width."""

    sel: Expr
    if_true: Expr
    if_false: Expr

    def __post_init__(self) -> None:
        if self.sel.width != 1:
            raise WidthError(f"mux select must be 1 bit, got {self.sel.width}")
        if self.if_true.width != self.if_false.width:
            raise WidthError(
                f"mux arm widths differ: {self.if_true.width} vs {self.if_false.width}"
            )

    @property
    def width(self) -> int:
        return self.if_true.width


@dataclass(frozen=True, eq=False)
class Cat(Expr):
    """Concatenation, MSB-first (Verilog ``{a, b, c}`` order)."""

    parts: tuple[Expr, ...]

    def __post_init__(self) -> None:
        if not self.parts:
            raise WidthError("Cat requires at least one part")

    @property
    def width(self) -> int:
        return sum(part.width for part in self.parts)


@dataclass(frozen=True, eq=False)
class Slice(Expr):
    """Bit slice ``a[hi:lo]``, both bounds inclusive, Verilog style."""

    a: Expr
    hi: int
    lo: int

    def __post_init__(self) -> None:
        if not 0 <= self.lo <= self.hi < self.a.width:
            raise WidthError(
                f"slice [{self.hi}:{self.lo}] out of range for width {self.a.width}"
            )

    @property
    def width(self) -> int:
        return self.hi - self.lo + 1


@dataclass(frozen=True, eq=False)
class Ext(Expr):
    """Zero- or sign-extension to a strictly larger (or equal) width."""

    a: Expr
    width: int
    signed: bool

    def __post_init__(self) -> None:
        if self.width < self.a.width:
            raise WidthError(
                f"extension to {self.width} narrower than operand {self.a.width}"
            )


@dataclass(frozen=True, eq=False)
class MemRead(Expr):
    """Asynchronous (combinational) read from a memory.

    ``memory`` is a :class:`repro.rtl.module.Memory`; typed loosely here to
    avoid a circular import.
    """

    memory: object
    addr: Expr

    @property
    def width(self) -> int:
        return self.memory.width  # type: ignore[attr-defined]


# ----------------------------------------------------------------------
# reference interpreter
# ----------------------------------------------------------------------

def eval_expr(
    expr: Expr,
    read_signal: Callable[[Signal], int],
    read_mem: Callable[[object, int], int] | None = None,
) -> int:
    """Evaluate ``expr`` to a masked unsigned integer.

    ``read_signal`` maps a :class:`Signal` to its current unsigned value;
    ``read_mem`` maps ``(memory, address)`` to the stored word and is only
    required when the expression contains :class:`MemRead` nodes.
    """
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Ref):
        return read_signal(expr.signal) & ((1 << expr.width) - 1)
    if isinstance(expr, BinOp):
        a = eval_expr(expr.a, read_signal, read_mem)
        b = eval_expr(expr.b, read_signal, read_mem)
        return _eval_binop(expr, a, b)
    if isinstance(expr, UnOp):
        a = eval_expr(expr.a, read_signal, read_mem)
        return _eval_unop(expr, a)
    if isinstance(expr, Mux):
        sel = eval_expr(expr.sel, read_signal, read_mem)
        arm = expr.if_true if sel else expr.if_false
        return eval_expr(arm, read_signal, read_mem)
    if isinstance(expr, Cat):
        value = 0
        for part in expr.parts:
            value = (value << part.width) | eval_expr(part, read_signal, read_mem)
        return value
    if isinstance(expr, Slice):
        value = eval_expr(expr.a, read_signal, read_mem)
        return (value >> expr.lo) & ((1 << expr.width) - 1)
    if isinstance(expr, Ext):
        value = eval_expr(expr.a, read_signal, read_mem)
        if expr.signed:
            return to_signed(value, expr.a.width) & ((1 << expr.width) - 1)
        return value
    if isinstance(expr, MemRead):
        if read_mem is None:
            raise WidthError("expression contains MemRead but no read_mem given")
        addr = eval_expr(expr.addr, read_signal, read_mem)
        return read_mem(expr.memory, addr) & ((1 << expr.width) - 1)
    raise TypeError(f"unknown expression node {type(expr).__name__}")


def _eval_binop(expr: BinOp, a: int, b: int) -> int:
    kind = expr.kind
    msk = (1 << expr.width) - 1
    if kind is BinOpKind.ADD:
        return (a + b) & msk
    if kind is BinOpKind.SUB:
        return (a - b) & msk
    if kind is BinOpKind.MUL:
        return (a * b) & msk
    if kind is BinOpKind.MULS:
        sa = to_signed(a, expr.a.width)
        sb = to_signed(b, expr.b.width)
        return (sa * sb) & msk
    if kind is BinOpKind.AND:
        return a & b
    if kind is BinOpKind.OR:
        return a | b
    if kind is BinOpKind.XOR:
        return a ^ b
    if kind is BinOpKind.SHL:
        return (a << b) & msk if b < expr.width else 0
    if kind is BinOpKind.LSHR:
        return a >> b if b < expr.width else 0
    if kind is BinOpKind.ASHR:
        sa = to_signed(a, expr.a.width)
        shift = min(b, expr.width - 1)
        return (sa >> shift) & msk
    if kind is BinOpKind.EQ:
        return int(a == b)
    if kind is BinOpKind.NE:
        return int(a != b)
    if kind is BinOpKind.ULT:
        return int(a < b)
    if kind is BinOpKind.ULE:
        return int(a <= b)
    if kind is BinOpKind.UGT:
        return int(a > b)
    if kind is BinOpKind.UGE:
        return int(a >= b)
    sa = to_signed(a, expr.a.width)
    sb = to_signed(b, expr.b.width)
    if kind is BinOpKind.SLT:
        return int(sa < sb)
    if kind is BinOpKind.SLE:
        return int(sa <= sb)
    if kind is BinOpKind.SGT:
        return int(sa > sb)
    if kind is BinOpKind.SGE:
        return int(sa >= sb)
    raise TypeError(f"unknown binop {kind}")


def _eval_unop(expr: UnOp, a: int) -> int:
    kind = expr.kind
    msk = (1 << expr.a.width) - 1
    if kind is UnOpKind.NOT:
        return ~a & msk
    if kind is UnOpKind.NEG:
        return -a & msk
    if kind is UnOpKind.REDOR:
        return int(a != 0)
    if kind is UnOpKind.REDAND:
        return int(a == msk)
    if kind is UnOpKind.REDXOR:
        return bin(a).count("1") & 1
    raise TypeError(f"unknown unop {kind}")


# ----------------------------------------------------------------------
# Python code emission (used by the compiled simulator)
# ----------------------------------------------------------------------

def emit_py(
    expr: Expr,
    ref_of: Callable[[Signal], str],
    mem_of: Callable[[object], str] | None = None,
) -> str:
    """Emit a Python expression string computing ``expr``.

    ``ref_of`` maps a signal to the Python expression holding its unsigned
    value; ``mem_of`` maps a memory object to the Python name of its backing
    list.  The generated code may call the ``_sx(v, w)`` sign-extension
    helper, which the simulator defines in the compiled namespace.
    """
    if isinstance(expr, Const):
        return repr(expr.value)
    if isinstance(expr, Ref):
        return ref_of(expr.signal)
    if isinstance(expr, BinOp):
        a = emit_py(expr.a, ref_of, mem_of)
        b = emit_py(expr.b, ref_of, mem_of)
        return _emit_binop(expr, a, b)
    if isinstance(expr, UnOp):
        a = emit_py(expr.a, ref_of, mem_of)
        msk = (1 << expr.a.width) - 1
        if expr.kind is UnOpKind.NOT:
            return f"(~({a}) & {msk})"
        if expr.kind is UnOpKind.NEG:
            return f"(-({a}) & {msk})"
        if expr.kind is UnOpKind.REDOR:
            return f"(1 if ({a}) else 0)"
        if expr.kind is UnOpKind.REDAND:
            return f"(1 if ({a}) == {msk} else 0)"
        if expr.kind is UnOpKind.REDXOR:
            return f"(({a}).bit_count() & 1)"
        raise TypeError(f"unknown unop {expr.kind}")
    if isinstance(expr, Mux):
        sel = emit_py(expr.sel, ref_of, mem_of)
        t = emit_py(expr.if_true, ref_of, mem_of)
        f = emit_py(expr.if_false, ref_of, mem_of)
        return f"(({t}) if ({sel}) else ({f}))"
    if isinstance(expr, Cat):
        pieces = []
        shift = expr.width
        for part in expr.parts:
            shift -= part.width
            code = emit_py(part, ref_of, mem_of)
            pieces.append(f"(({code}) << {shift})" if shift else f"({code})")
        return "(" + " | ".join(pieces) + ")"
    if isinstance(expr, Slice):
        a = emit_py(expr.a, ref_of, mem_of)
        msk = (1 << expr.width) - 1
        if expr.lo == 0:
            return f"(({a}) & {msk})"
        return f"((({a}) >> {expr.lo}) & {msk})"
    if isinstance(expr, Ext):
        a = emit_py(expr.a, ref_of, mem_of)
        if not expr.signed or expr.width == expr.a.width:
            if expr.signed and expr.width == expr.a.width:
                return f"({a})"
            return f"({a})"
        msk = (1 << expr.width) - 1
        return f"(_sx({a}, {expr.a.width}) & {msk})"
    if isinstance(expr, MemRead):
        if mem_of is None:
            raise WidthError("expression contains MemRead but no mem_of given")
        addr = emit_py(expr.addr, ref_of, mem_of)
        depth = expr.memory.depth  # type: ignore[attr-defined]
        return f"({mem_of(expr.memory)}[({addr}) % {depth}])"
    raise TypeError(f"unknown expression node {type(expr).__name__}")


def _emit_binop(expr: BinOp, a: str, b: str) -> str:
    kind = expr.kind
    msk = (1 << expr.width) - 1
    if kind is BinOpKind.ADD:
        return f"((({a}) + ({b})) & {msk})"
    if kind is BinOpKind.SUB:
        return f"((({a}) - ({b})) & {msk})"
    if kind is BinOpKind.MUL:
        return f"((({a}) * ({b})) & {msk})"
    if kind is BinOpKind.MULS:
        return f"((_sx({a}, {expr.a.width}) * _sx({b}, {expr.b.width})) & {msk})"
    if kind is BinOpKind.AND:
        return f"(({a}) & ({b}))"
    if kind is BinOpKind.OR:
        return f"(({a}) | ({b}))"
    if kind is BinOpKind.XOR:
        return f"(({a}) ^ ({b}))"
    if kind is BinOpKind.SHL:
        return f"(((({a}) << ({b})) & {msk}) if ({b}) < {expr.width} else 0)"
    if kind is BinOpKind.LSHR:
        return f"((({a}) >> ({b})) if ({b}) < {expr.width} else 0)"
    if kind is BinOpKind.ASHR:
        return (
            f"((_sx({a}, {expr.a.width}) >> "
            f"(({b}) if ({b}) < {expr.width - 1} else {expr.width - 1})) & {msk})"
        )
    if kind is BinOpKind.EQ:
        return f"(1 if ({a}) == ({b}) else 0)"
    if kind is BinOpKind.NE:
        return f"(1 if ({a}) != ({b}) else 0)"
    if kind is BinOpKind.ULT:
        return f"(1 if ({a}) < ({b}) else 0)"
    if kind is BinOpKind.ULE:
        return f"(1 if ({a}) <= ({b}) else 0)"
    if kind is BinOpKind.UGT:
        return f"(1 if ({a}) > ({b}) else 0)"
    if kind is BinOpKind.UGE:
        return f"(1 if ({a}) >= ({b}) else 0)"
    wa, wb = expr.a.width, expr.b.width
    if kind is BinOpKind.SLT:
        return f"(1 if _sx({a}, {wa}) < _sx({b}, {wb}) else 0)"
    if kind is BinOpKind.SLE:
        return f"(1 if _sx({a}, {wa}) <= _sx({b}, {wb}) else 0)"
    if kind is BinOpKind.SGT:
        return f"(1 if _sx({a}, {wa}) > _sx({b}, {wb}) else 0)"
    if kind is BinOpKind.SGE:
        return f"(1 if _sx({a}, {wa}) >= _sx({b}, {wb}) else 0)"
    raise TypeError(f"unknown binop {kind}")


# ----------------------------------------------------------------------
# structural queries
# ----------------------------------------------------------------------

def expr_signals(expr: Expr, out: set[Signal] | None = None) -> set[Signal]:
    """Collect every signal read by ``expr`` (transitively)."""
    if out is None:
        out = set()
    if isinstance(expr, Ref):
        out.add(expr.signal)
    elif isinstance(expr, BinOp):
        expr_signals(expr.a, out)
        expr_signals(expr.b, out)
    elif isinstance(expr, UnOp):
        expr_signals(expr.a, out)
    elif isinstance(expr, Mux):
        expr_signals(expr.sel, out)
        expr_signals(expr.if_true, out)
        expr_signals(expr.if_false, out)
    elif isinstance(expr, Cat):
        for part in expr.parts:
            expr_signals(part, out)
    elif isinstance(expr, (Slice, Ext)):
        expr_signals(expr.a, out)
    elif isinstance(expr, MemRead):
        expr_signals(expr.addr, out)
    return out


def expr_mem_reads(expr: Expr, out: list[MemRead] | None = None) -> list[MemRead]:
    """Collect every :class:`MemRead` node in ``expr`` (pre-order)."""
    if out is None:
        out = []
    if isinstance(expr, MemRead):
        out.append(expr)
        expr_mem_reads(expr.addr, out)
    elif isinstance(expr, BinOp):
        expr_mem_reads(expr.a, out)
        expr_mem_reads(expr.b, out)
    elif isinstance(expr, UnOp):
        expr_mem_reads(expr.a, out)
    elif isinstance(expr, Mux):
        expr_mem_reads(expr.sel, out)
        expr_mem_reads(expr.if_true, out)
        expr_mem_reads(expr.if_false, out)
    elif isinstance(expr, Cat):
        for part in expr.parts:
            expr_mem_reads(part, out)
    elif isinstance(expr, (Slice, Ext)):
        expr_mem_reads(expr.a, out)
    return out


def expr_size(expr: Expr) -> int:
    """Number of nodes in the expression tree (used by tests and reports)."""
    if isinstance(expr, (Const, Ref)):
        return 1
    if isinstance(expr, BinOp):
        return 1 + expr_size(expr.a) + expr_size(expr.b)
    if isinstance(expr, UnOp):
        return 1 + expr_size(expr.a)
    if isinstance(expr, Mux):
        return 1 + expr_size(expr.sel) + expr_size(expr.if_true) + expr_size(expr.if_false)
    if isinstance(expr, Cat):
        return 1 + sum(expr_size(part) for part in expr.parts)
    if isinstance(expr, (Slice, Ext)):
        return 1 + expr_size(expr.a)
    if isinstance(expr, MemRead):
        return 1 + expr_size(expr.addr)
    raise TypeError(f"unknown expression node {type(expr).__name__}")
