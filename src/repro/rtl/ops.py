"""Smart constructors for the RTL expression IR.

These helpers keep frontend code readable: integer literals are promoted to
:class:`Const` nodes, operands are width-adjusted where the operator demands
equal widths, and signed/unsigned variants are selected by a flag rather
than by remembering enum names.

Width policy: ``add``/``sub`` produce ``max(wa, wb) + 1`` bits when
``grow=True`` (hardware-construction style, never loses a carry) or the
common operand width when ``grow=False`` (Verilog expression style).
``mul`` always produces the full product.
"""

from __future__ import annotations

from ..core.errors import WidthError
from .ir import BinOp, BinOpKind, Cat, Const, Expr, Ext, Mux, Ref, Signal, Slice, UnOp, UnOpKind

__all__ = [
    "const",
    "ref",
    "as_expr",
    "zext",
    "sext",
    "trunc",
    "resize",
    "add",
    "sub",
    "mul",
    "band",
    "bor",
    "bxor",
    "bnot",
    "neg",
    "shl",
    "lshr",
    "ashr",
    "eq",
    "ne",
    "lt",
    "le",
    "gt",
    "ge",
    "mux",
    "cat",
    "bits",
    "bit",
    "select",
    "redor",
    "redand",
]

ExprLike = Expr | Signal | int


def const(value: int, width: int) -> Const:
    """An integer literal of explicit width."""
    return Const(value, width)


def ref(signal: Signal) -> Ref:
    """Read a signal's current value."""
    return Ref(signal)


def as_expr(value: ExprLike, width: int | None = None) -> Expr:
    """Coerce a signal or integer into an expression.

    Integers require ``width``; expressions and signals carry their own.
    """
    if isinstance(value, Expr):
        return value
    if isinstance(value, Signal):
        return Ref(value)
    if isinstance(value, int):
        if width is None:
            raise TypeError("integer operands need an explicit width")
        return Const(value, width)
    raise TypeError(f"cannot use {type(value).__name__} as an expression")


def zext(a: ExprLike, width: int) -> Expr:
    """Zero-extend to ``width`` (no-op when already that wide)."""
    expr = as_expr(a)
    return expr if expr.width == width else Ext(expr, width, signed=False)


def sext(a: ExprLike, width: int) -> Expr:
    """Sign-extend to ``width`` (no-op when already that wide)."""
    expr = as_expr(a)
    return expr if expr.width == width else Ext(expr, width, signed=True)


def trunc(a: ExprLike, width: int) -> Expr:
    """Keep the low ``width`` bits."""
    expr = as_expr(a)
    return expr if expr.width == width else Slice(expr, width - 1, 0)


def resize(a: ExprLike, width: int, signed: bool = True) -> Expr:
    """Extend or truncate to exactly ``width`` bits."""
    expr = as_expr(a)
    if expr.width == width:
        return expr
    if expr.width > width:
        return Slice(expr, width - 1, 0)
    return Ext(expr, width, signed=signed)


def _balance(a: ExprLike, b: ExprLike, signed: bool) -> tuple[Expr, Expr]:
    """Promote ``a``/``b`` to expressions of a common width."""
    if isinstance(a, int) and isinstance(b, int):
        raise TypeError("at least one operand must be a signal or expression")
    if isinstance(a, int):
        bb = as_expr(b)
        return as_expr(a, bb.width), bb
    if isinstance(b, int):
        aa = as_expr(a)
        return aa, as_expr(b, aa.width)
    aa, bb = as_expr(a), as_expr(b)
    width = max(aa.width, bb.width)
    extend = sext if signed else zext
    return extend(aa, width), extend(bb, width)


def add(a: ExprLike, b: ExprLike, *, signed: bool = True, grow: bool = False) -> Expr:
    """Addition; ``grow=True`` widens the result by one carry bit."""
    aa, bb = _balance(a, b, signed)
    if grow:
        width = aa.width + 1
        extend = sext if signed else zext
        aa, bb = extend(aa, width), extend(bb, width)
    return BinOp(BinOpKind.ADD, aa, bb)


def sub(a: ExprLike, b: ExprLike, *, signed: bool = True, grow: bool = False) -> Expr:
    """Subtraction; ``grow=True`` widens the result by one borrow bit."""
    aa, bb = _balance(a, b, signed)
    if grow:
        width = aa.width + 1
        extend = sext if signed else zext
        aa, bb = extend(aa, width), extend(bb, width)
    return BinOp(BinOpKind.SUB, aa, bb)


def mul(a: ExprLike, b: ExprLike, *, signed: bool = True) -> Expr:
    """Full-width product (``wa + wb`` result bits)."""
    if isinstance(a, int):
        bb = as_expr(b)
        from ..core.bits import min_width_signed, min_width_unsigned

        width = min_width_signed(a) if signed else min_width_unsigned(a)
        aa = as_expr(a, width)
    elif isinstance(b, int):
        aa = as_expr(a)
        from ..core.bits import min_width_signed, min_width_unsigned

        width = min_width_signed(b) if signed else min_width_unsigned(b)
        bb = as_expr(b, width)
    else:
        aa, bb = as_expr(a), as_expr(b)
    kind = BinOpKind.MULS if signed else BinOpKind.MUL
    return BinOp(kind, aa, bb)


def band(a: ExprLike, b: ExprLike) -> Expr:
    aa, bb = _balance(a, b, signed=False)
    return BinOp(BinOpKind.AND, aa, bb)


def bor(a: ExprLike, b: ExprLike) -> Expr:
    aa, bb = _balance(a, b, signed=False)
    return BinOp(BinOpKind.OR, aa, bb)


def bxor(a: ExprLike, b: ExprLike) -> Expr:
    aa, bb = _balance(a, b, signed=False)
    return BinOp(BinOpKind.XOR, aa, bb)


def bnot(a: ExprLike) -> Expr:
    return UnOp(UnOpKind.NOT, as_expr(a))


def neg(a: ExprLike) -> Expr:
    return UnOp(UnOpKind.NEG, as_expr(a))


def shl(a: ExprLike, amount: ExprLike) -> Expr:
    aa = as_expr(a)
    return BinOp(BinOpKind.SHL, aa, as_expr(amount, 32))


def lshr(a: ExprLike, amount: ExprLike) -> Expr:
    aa = as_expr(a)
    return BinOp(BinOpKind.LSHR, aa, as_expr(amount, 32))


def ashr(a: ExprLike, amount: ExprLike) -> Expr:
    aa = as_expr(a)
    return BinOp(BinOpKind.ASHR, aa, as_expr(amount, 32))


def eq(a: ExprLike, b: ExprLike) -> Expr:
    aa, bb = _balance(a, b, signed=False)
    return BinOp(BinOpKind.EQ, aa, bb)


def ne(a: ExprLike, b: ExprLike) -> Expr:
    aa, bb = _balance(a, b, signed=False)
    return BinOp(BinOpKind.NE, aa, bb)


def lt(a: ExprLike, b: ExprLike, *, signed: bool = True) -> Expr:
    aa, bb = _balance(a, b, signed)
    return BinOp(BinOpKind.SLT if signed else BinOpKind.ULT, aa, bb)


def le(a: ExprLike, b: ExprLike, *, signed: bool = True) -> Expr:
    aa, bb = _balance(a, b, signed)
    return BinOp(BinOpKind.SLE if signed else BinOpKind.ULE, aa, bb)


def gt(a: ExprLike, b: ExprLike, *, signed: bool = True) -> Expr:
    aa, bb = _balance(a, b, signed)
    return BinOp(BinOpKind.SGT if signed else BinOpKind.UGT, aa, bb)


def ge(a: ExprLike, b: ExprLike, *, signed: bool = True) -> Expr:
    aa, bb = _balance(a, b, signed)
    return BinOp(BinOpKind.SGE if signed else BinOpKind.UGE, aa, bb)


def mux(sel: ExprLike, if_true: ExprLike, if_false: ExprLike, *, signed: bool = True) -> Expr:
    """2:1 multiplexer; arms are balanced to a common width."""
    tt, ff = _balance(if_true, if_false, signed)
    return Mux(as_expr(sel), tt, ff)


def cat(*parts: ExprLike) -> Expr:
    """Concatenate MSB-first (Verilog ``{...}`` order)."""
    return Cat(tuple(as_expr(part) for part in parts))


def bits(a: ExprLike, hi: int, lo: int) -> Expr:
    """Verilog-style inclusive bit slice ``a[hi:lo]``."""
    return Slice(as_expr(a), hi, lo)


def bit(a: ExprLike, index: int) -> Expr:
    """Extract a single bit."""
    return Slice(as_expr(a), index, index)


def select(sel: ExprLike, items: list[ExprLike], *, signed: bool = True) -> Expr:
    """N:1 multiplexer as a log-depth binary tree keyed on ``sel``'s bits.

    ``items[i]`` is returned when ``sel == i``; out-of-range selects fall
    back to the highest item.  This is how synthesis actually maps wide
    selects, so designs should prefer it over hand-rolled mux chains.
    """
    if not items:
        raise WidthError("select needs at least one item")
    sel_expr = as_expr(sel)
    level: list[Expr] = [as_expr(item) for item in items]
    width = max(item.width for item in level)
    extend = sext if signed else zext
    level = [extend(item, width) for item in level]
    bit_index = 0
    while len(level) > 1:
        sel_bit = Slice(sel_expr, bit_index, bit_index)
        nxt: list[Expr] = []
        for i in range(0, len(level), 2):
            if i + 1 < len(level):
                nxt.append(Mux(sel_bit, level[i + 1], level[i]))
            else:
                nxt.append(level[i])
        level = nxt
        bit_index += 1
    return level[0]


def redor(a: ExprLike) -> Expr:
    return UnOp(UnOpKind.REDOR, as_expr(a))


def redand(a: ExprLike) -> Expr:
    return UnOp(UnOpKind.REDAND, as_expr(a))
